#include "verify/oracle.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "cnf/encode.hpp"
#include "util/fault.hpp"

namespace syseco {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Builds the BDD of `root`'s function over pre-assigned input variables.
/// Inputs absent from `varOfInput` read constant 0 (the same convention as
/// CertificationOracle::mapToSpec, so all three routes check the identical
/// correspondence). Throws BddLimitExceeded when the manager budget trips.
///
/// `live` doubles as the memo map and the reorder root set: the caller's
/// root provider enumerates it, so a mid-build auto-reorder sees exactly
/// the refs later gates will still read. Entries whose remaining fanout
/// uses drop to zero are erased - that shrinking frontier is what makes
/// sifting's live-size objective meaningful on a cone build.
Bdd::Ref buildCone(Bdd& mgr, const Netlist& nl, NetId root,
                   const std::unordered_map<std::uint32_t, std::uint32_t>&
                       varOfInput,
                   std::unordered_map<NetId, Bdd::Ref>& live) {
  const std::vector<GateId> cone = nl.coneGates({root});
  std::unordered_map<NetId, std::uint32_t> usesLeft;
  for (GateId g : cone)
    for (NetId f : nl.gate(g).fanins) ++usesLeft[f];
  ++usesLeft[root];
  auto netRef = [&](NetId n) -> Bdd::Ref {
    if (auto it = live.find(n); it != live.end()) return it->second;
    // Not a gate output we computed: a PI (or an undriven net, which the
    // auditor would have flagged; treat it as constant 0 like evalOnce).
    Bdd::Ref ref = Bdd::kFalse;
    if (nl.isInputNet(n)) {
      const auto it = varOfInput.find(nl.net(n).srcIdx);
      if (it != varOfInput.end()) ref = mgr.var(it->second);
    }
    live.emplace(n, ref);
    return ref;
  };
  for (GateId g : cone) {
    const Netlist::Gate& gate = nl.gate(g);
    std::vector<Bdd::Ref> fan;
    fan.reserve(gate.fanins.size());
    for (NetId f : gate.fanins) fan.push_back(netRef(f));
    // Every partial lands in the pinned slot before the next operation
    // starts, so a reorder at any operation boundary keeps it live.
    Bdd::ScopedRef out(mgr, Bdd::kFalse);
    switch (gate.type) {
      case GateType::Const0: out = Bdd::kFalse; break;
      case GateType::Const1: out = Bdd::kTrue; break;
      case GateType::Buf: out = fan[0]; break;
      case GateType::Not: out = mgr.bNot(fan[0]); break;
      case GateType::And: out = mgr.andMany(fan); break;
      case GateType::Or: out = mgr.orMany(fan); break;
      case GateType::Nand:
        out = mgr.andMany(fan);
        out = mgr.bNot(out);
        break;
      case GateType::Nor:
        out = mgr.orMany(fan);
        out = mgr.bNot(out);
        break;
      case GateType::Xor:
      case GateType::Xnor: {
        for (Bdd::Ref f : fan) out = mgr.bXor(out, f);
        if (gate.type == GateType::Xnor) out = mgr.bNot(out);
        break;
      }
      case GateType::Mux: out = mgr.ite(fan[0], fan[2], fan[1]); break;
    }
    live[gate.out] = out;
    for (NetId f : gate.fanins)
      if (--usesLeft[f] == 0) live.erase(f);
  }
  return netRef(root);
}

}  // namespace

CertificationOracle::CertificationOracle(const Netlist& impl,
                                         const Netlist& spec,
                                         const OracleOptions& options)
    : impl_(impl), spec_(spec), opt_(options) {
  specInputFromImpl_.resize(spec_.numInputs(), kNullId);
  for (std::uint32_t i = 0; i < spec_.numInputs(); ++i)
    specInputFromImpl_[i] = impl_.findInput(spec_.inputName(i));
}

InputPattern CertificationOracle::mapToSpec(
    const InputPattern& implPattern) const {
  InputPattern out(spec_.numInputs(), 0);
  for (std::uint32_t i = 0; i < spec_.numInputs(); ++i)
    if (specInputFromImpl_[i] != kNullId)
      out[i] = implPattern[specInputFromImpl_[i]];
  return out;
}

RouteResult CertificationOracle::satRoute(std::uint32_t o, std::uint32_t op,
                                          InputPattern* cex) {
  const Clock::time_point start = Clock::now();
  RouteResult result;
  // A fresh encoding: nothing (variable numbering, learned clauses, sweep
  // caches) is shared with the search that produced the patch.
  PairEncoding pe(impl_, spec_);
  Rng rng(opt_.seed ^ 0x5a7c3c0de0ULL ^
          (0x9e3779b97f4a7c15ULL * (o + 1)));
  const Solver::Result verdict =
      pe.solveDiffSwept(o, op, opt_.satConflictBudget, rng);
  switch (verdict) {
    case Solver::Result::Unsat:
      result.verdict = RouteVerdict::kEquivalent;
      break;
    case Solver::Result::Sat:
      result.verdict = RouteVerdict::kNotEquivalent;
      if (cex) *cex = pe.extractInputs(&rng);
      result.detail = "fresh miter satisfiable";
      break;
    case Solver::Result::Unknown:
      result.verdict = RouteVerdict::kSkippedBudget;
      result.detail = std::string("solver stopped: ") +
                      statusCodeName(pe.stopReason());
      break;
  }
  result.seconds = secondsSince(start);
  return result;
}

RouteResult CertificationOracle::bddRoute(std::uint32_t o, std::uint32_t op,
                                          InputPattern* cex,
                                          BddStats* stats) {
  const Clock::time_point start = Clock::now();
  RouteResult result;
  // Deterministic budget-trip injection for the skipped(budget) tests: the
  // route must behave exactly as if the node limit fired mid-build.
  if (const auto kind = fault::fire("oracle.bdd");
      kind == fault::Kind::kBddBlowup ||
      kind == fault::Kind::kBudgetExhausted) {
    result.verdict = RouteVerdict::kSkippedBudget;
    result.detail = "node budget exceeded (fault-injected)";
    result.seconds = secondsSince(start);
    return result;
  }
  // Label-correlated variable space over the union of both supports.
  const std::vector<std::uint32_t> implSup = impl_.support(impl_.outputNet(o));
  const std::vector<std::uint32_t> specSup = spec_.support(spec_.outputNet(op));
  std::unordered_map<std::uint32_t, std::uint32_t> implVar;
  std::unordered_map<std::uint32_t, std::uint32_t> specVar;
  std::uint32_t numVars = 0;
  for (std::uint32_t pi : implSup) implVar.emplace(pi, numVars++);
  for (std::uint32_t pi : specSup) {
    const std::uint32_t ii = specInputFromImpl_[pi];
    if (ii != kNullId) {
      if (auto it = implVar.find(ii); it != implVar.end()) {
        specVar.emplace(pi, it->second);
        continue;
      }
      // Correlated input outside the impl cone's support: it still needs a
      // shared variable so a cex assigns both sides consistently.
      const std::uint32_t v = numVars++;
      implVar.emplace(ii, v);
      specVar.emplace(pi, v);
      continue;
    }
    specVar.emplace(pi, numVars++);
  }
  BddConfig cfg;
  cfg.nodeLimit = opt_.bddNodeBudget;
  cfg.reorder = opt_.bddReorder;
  if (opt_.bddCacheBits != 0) {
    cfg.cacheBits = opt_.bddCacheBits;
    cfg.maxCacheBits = std::max(cfg.maxCacheBits, opt_.bddCacheBits);
  }
  if (opt_.bddReorderThreshold != 0)
    cfg.reorderThreshold = opt_.bddReorderThreshold;
  Bdd mgr(numVars, cfg);
  // Reorder roots: the in-progress cone frontier plus every finished
  // function still held across the remaining operations.
  std::unordered_map<NetId, Bdd::Ref> frontier;
  std::vector<Bdd::Ref> held;
  mgr.setRootProvider([&](std::vector<Bdd::Ref>& roots) {
    roots.reserve(roots.size() + frontier.size() + held.size());
    for (const auto& [net, ref] : frontier) roots.push_back(ref);
    roots.insert(roots.end(), held.begin(), held.end());
  });
  try {
    const Bdd::Ref fImpl =
        buildCone(mgr, impl_, impl_.outputNet(o), implVar, frontier);
    held.push_back(fImpl);
    frontier.clear();
    const Bdd::Ref fSpec =
        buildCone(mgr, spec_, spec_.outputNet(op), specVar, frontier);
    held.push_back(fSpec);
    frontier.clear();
    const Bdd::Ref diff = mgr.bXor(fImpl, fSpec);
    held.assign(1, diff);
    if (diff == Bdd::kFalse) {
      result.verdict = RouteVerdict::kEquivalent;
      result.detail =
          "monolithic cones over " + std::to_string(numVars) + " vars";
    } else {
      result.verdict = RouteVerdict::kNotEquivalent;
      result.detail = "XOR of cones is satisfiable";
      if (cex) {
        BddCube cube;
        mgr.pickCube(diff, cube);
        InputPattern pattern(impl_.numInputs(), 0);
        for (const auto& [pi, v] : implVar)
          if (v < cube.lits.size() && cube.lits[v] == 1) pattern[pi] = 1;
        *cex = std::move(pattern);
      }
    }
  } catch (const BddLimitExceeded&) {
    // The check did not finish; reporting anything but "skipped" here
    // would be a verdict the route never computed.
    result.verdict = RouteVerdict::kSkippedBudget;
    result.detail = "node budget exceeded at " +
                    std::to_string(opt_.bddNodeBudget) + " nodes";
  }
  if (stats) *stats = mgr.stats();
  result.seconds = secondsSince(start);
  return result;
}

RouteResult CertificationOracle::simRoute(std::uint32_t o, std::uint32_t op,
                                          InputPattern* cex) {
  const Clock::time_point start = Clock::now();
  RouteResult result;
  const std::size_t words = opt_.simWords ? opt_.simWords : 1;
  Rng rng(opt_.seed ^ 0x51u ^ (0x9e3779b97f4a7c15ULL * (o + 1)));

  // Pass 1: mass random, label-correlated. Spec inputs with no impl
  // counterpart stay 0 (the Simulator zero-initializes), matching
  // mapToSpec's correspondence.
  Simulator implSim(impl_, words);
  Simulator specSim(spec_, words);
  implSim.randomizeInputs(rng);
  for (std::uint32_t i = 0; i < spec_.numInputs(); ++i) {
    const std::uint32_t ii = specInputFromImpl_[i];
    if (ii == kNullId) continue;
    for (std::size_t w = 0; w < words; ++w)
      specSim.setInputWord(i, w, implSim.word(impl_.inputNet(ii), w));
  }
  implSim.run();
  specSim.run();
  std::size_t checked = implSim.numPatterns();
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t diff =
        implSim.word(impl_.outputNet(o), w) ^ specSim.word(spec_.outputNet(op), w);
    if (diff == 0) continue;
    const std::size_t k = w * 64 +
        static_cast<std::size_t>(__builtin_ctzll(diff));
    result.verdict = RouteVerdict::kNotEquivalent;
    result.detail = "random pattern " + std::to_string(k) + " mismatches";
    if (cex) *cex = implSim.inputPatternAt(k);
    result.seconds = secondsSince(start);
    return result;
  }

  // Pass 2: directed at the output's support - walking-one and
  // walking-zero over the support inputs, then random-on-support-only
  // patterns, capped at simDirectedMax.
  const std::vector<std::uint32_t> sup = impl_.support(impl_.outputNet(o));
  std::vector<InputPattern> directed;
  const InputPattern zeros(impl_.numInputs(), 0);
  InputPattern ones = zeros;
  for (std::uint32_t pi : sup) ones[pi] = 1;
  directed.push_back(ones);
  for (std::uint32_t pi : sup) {
    if (directed.size() + 1 >= opt_.simDirectedMax) break;
    InputPattern one = zeros;
    one[pi] = 1;
    directed.push_back(one);  // walking one
    InputPattern zero = ones;
    zero[pi] = 0;
    directed.push_back(zero);  // walking zero
  }
  while (directed.size() < opt_.simDirectedMax) {
    InputPattern p = zeros;
    for (std::uint32_t pi : sup) p[pi] = rng.flip() ? 1 : 0;
    directed.push_back(std::move(p));
  }
  if (!directed.empty()) {
    const std::size_t dwords = (directed.size() + 63) / 64;
    Simulator dImpl(impl_, dwords);
    Simulator dSpec(spec_, dwords);
    dImpl.loadPatterns(directed);
    std::vector<InputPattern> specPatterns;
    specPatterns.reserve(directed.size());
    for (const InputPattern& p : directed) specPatterns.push_back(mapToSpec(p));
    dSpec.loadPatterns(specPatterns);
    dImpl.run();
    dSpec.run();
    checked += directed.size();
    for (std::size_t w = 0; w < dwords; ++w) {
      const std::uint64_t diff = dImpl.word(impl_.outputNet(o), w) ^
                                 dSpec.word(spec_.outputNet(op), w);
      if (diff == 0) continue;
      std::size_t k = w * 64 + static_cast<std::size_t>(__builtin_ctzll(diff));
      // Tail slots duplicate the all-zero assignment; the mismatch is
      // real, so report it on the canonical all-zero pattern.
      if (k >= directed.size()) k = directed.size();  // any tail slot
      result.verdict = RouteVerdict::kNotEquivalent;
      result.detail = "directed pattern mismatches";
      if (cex)
        *cex = k < directed.size() ? directed[k] : zeros;
      result.seconds = secondsSince(start);
      return result;
    }
  }
  result.verdict = RouteVerdict::kPassedBounded;
  result.detail = std::to_string(checked) + " patterns clean";
  result.seconds = secondsSince(start);
  return result;
}

OutputCertificate CertificationOracle::certify(std::uint32_t o,
                                               std::uint32_t op) {
  OutputCertificate cert;
  cert.output = o;
  cert.name = impl_.outputName(o);
  InputPattern satCex, bddCex, simCex;
  cert.sat = satRoute(o, op, &satCex);
  cert.bdd = bddRoute(o, op, &bddCex, &cert.bddStats);
  cert.sim = simRoute(o, op, &simCex);

  int provers = 0;
  int refuters = 0;
  for (const RouteResult* r : {&cert.sat, &cert.bdd, &cert.sim}) {
    if (r->verdict == RouteVerdict::kEquivalent) ++provers;
    if (r->verdict == RouteVerdict::kNotEquivalent) ++refuters;
  }
  cert.certified = provers >= 1 && refuters == 0;
  cert.routesConflict = provers >= 1 && refuters >= 1;
  if (refuters > 0) {
    // Prefer the first refuting route whose counterexample the simulator
    // reproduces; a non-reproducing cex is kept but flagged.
    for (const InputPattern* candidate : {&simCex, &satCex, &bddCex}) {
      if (candidate->empty()) continue;
      bool reproduced = false;
      InputPattern shrunk =
          minimizeCex(impl_, o, spec_, op, *this, *candidate, &reproduced);
      if (reproduced || cert.cex.empty()) {
        cert.cex = std::move(shrunk);
        cert.cexReproduced = reproduced;
      }
      if (reproduced) break;
    }
    cert.cexDeviations = 0;
    for (std::uint8_t b : cert.cex) cert.cexDeviations += b ? 1 : 0;
  }
  return cert;
}

InputPattern minimizeCex(const Netlist& impl, std::uint32_t o,
                         const Netlist& spec, std::uint32_t op,
                         const CertificationOracle& oracle,
                         const InputPattern& cex, bool* reproduced) {
  auto mismatches = [&](const InputPattern& p) {
    return evalOnce(impl, p)[o] != evalOnce(spec, oracle.mapToSpec(p))[op];
  };
  if (!mismatches(cex)) {
    if (reproduced) *reproduced = false;
    return cex;
  }
  if (reproduced) *reproduced = true;

  // ddmin over the deviating (nonzero) bits: drive chunks of them back to
  // the all-zero baseline while the mismatch persists.
  InputPattern cur = cex;
  std::vector<std::size_t> dev;
  for (std::size_t i = 0; i < cur.size(); ++i)
    if (cur[i]) dev.push_back(i);
  std::size_t n = 2;
  while (!dev.empty()) {
    const std::size_t chunk = (dev.size() + n - 1) / n;
    bool reducedAny = false;
    for (std::size_t start = 0; start < dev.size(); start += chunk) {
      const std::size_t end = std::min(start + chunk, dev.size());
      InputPattern cand = cur;
      for (std::size_t j = start; j < end; ++j) cand[dev[j]] = 0;
      if (!mismatches(cand)) continue;
      cur = std::move(cand);
      dev.erase(dev.begin() + static_cast<std::ptrdiff_t>(start),
                dev.begin() + static_cast<std::ptrdiff_t>(end));
      n = n > 2 ? n - 1 : 2;
      reducedAny = true;
      break;
    }
    if (!reducedAny) {
      if (n >= dev.size()) break;  // 1-minimal
      n = std::min(n * 2, dev.size());
    }
  }
  return cur;
}

}  // namespace syseco
