#pragma once
// NetlistAuditor: cheap structural invariant checks at engine phase
// boundaries.
//
// The rectification engine mutates the working netlist across many layers
// (plan-order commits, worker-patch replay over IPC, journal restore,
// sweeping). A memory-corruption-class failure in any of them - a stale
// sink list, an out-of-range fanin, a dangling net - does not fail loudly;
// it produces downstream nonsense that the SAT/BDD/simulation layers then
// chew on. The auditor turns that into a structured diagnosis at the
// boundary where it first becomes observable: post-parse, post-patch-
// commit, post-resume-restore and post-isolate-decode run the boundary
// tier; `--audit=paranoid` adds deeper cross-checks (topological
// consistency, per-output support sanity, full isWellFormed agreement) at
// extra sites.
//
// Findings are collected, not thrown: a single audit reports *every*
// violated invariant so the diagnosis names the corruption instead of its
// first symptom. Callers that must abort convert the report with
// auditFailure().

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/status.hpp"

namespace syseco {

enum class AuditLevel {
  kOff,         ///< no audits
  kBoundaries,  ///< structural tier at engine phase boundaries
  kParanoid,    ///< adds deep cross-checks and extra audit sites
};

inline const char* auditLevelName(AuditLevel level) {
  switch (level) {
    case AuditLevel::kOff: return "off";
    case AuditLevel::kBoundaries: return "boundaries";
    case AuditLevel::kParanoid: return "paranoid";
  }
  return "unknown";
}

/// Inverse of auditLevelName; nullopt for unknown names.
std::optional<AuditLevel> auditLevelFromName(std::string_view name);

/// One violated invariant: which check and what exactly is wrong.
struct AuditFinding {
  std::string check;   ///< e.g. "gate-arity", "dangling-net", "acyclicity"
  std::string detail;  ///< ids and values, e.g. "gate 17 fanin 2 -> net 999"
};

/// Outcome of auditing one netlist at one phase boundary.
struct AuditReport {
  std::string phase;  ///< e.g. "post-parse", "post-patch-commit"
  bool ok = true;
  std::vector<AuditFinding> findings;
  double seconds = 0.0;
};

/// Audits `netlist` at `level`. kOff returns an empty ok report without
/// touching the netlist. The boundary tier checks, per live gate: type
/// arity, fanin/out id bounds and driver back-references; per net: source
/// consistency, sink cross-references and no dangling (undriven but
/// consumed) nets; plus acyclicity. Paranoid adds topological consistency
/// (every live fanin precedes its fanout), per-output support bounds, and
/// an isWellFormed cross-check.
AuditReport auditNetlist(const Netlist& netlist, AuditLevel level,
                         std::string phase);

/// Converts a failed report into the Status the engine propagates:
/// kInternal, with the phase and every finding in the message.
Status auditFailure(const AuditReport& report);

}  // namespace syseco
