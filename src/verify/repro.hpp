#pragma once
// Atomic repro bundles for oracle disagreements.
//
// When the certification oracle refutes a patch the engine committed as
// correct, the evidence must survive the run: the exact netlists, the
// minimized counterexample, the seed and the build that produced the
// disagreement. A bundle is a directory published atomically - files are
// written and fsync'd into a hidden temporary sibling, then rename()d into
// place - so a crash mid-write never leaves a half-bundle that looks like
// evidence. The MANIFEST (crc32 + size per file, computed by re-reading
// what was written) makes later tampering or truncation detectable.

#include <string>
#include <vector>

#include "util/status.hpp"

namespace syseco {

/// One file of a repro bundle. `name` is a bare filename (no separators).
struct ReproFile {
  std::string name;
  std::string content;
};

/// Writes `files` plus a MANIFEST as `<reproDir>/<bundleName>` (a numeric
/// suffix is appended on collision), creating `reproDir` if missing.
/// Returns the published bundle directory path.
Result<std::string> writeReproBundle(const std::string& reproDir,
                                     const std::string& bundleName,
                                     const std::vector<ReproFile>& files);

}  // namespace syseco
