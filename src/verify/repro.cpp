#include "verify/repro.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"

namespace syseco {

namespace {

Status ensureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) return Status::ok();
  return Status::invalidInput("cannot create directory '" + dir +
                              "': " + std::strerror(errno));
}

Status writeAndSync(const std::string& path, const std::string& content) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::internal("cannot create '" + path + "'");
  std::size_t written = 0;
  while (written < content.size()) {
    const ::ssize_t n = fault::fallibleWrite(
        fd, content.data() + written, content.size() - written, "repro.write");
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = Status::internal("cannot write '" + path +
                                        "': " + std::strerror(errno));
      ::close(fd);
      return s;
    }
    written += static_cast<std::size_t>(n);
  }
  const int rc = fault::fallibleFsync(fd, "repro.fsync");
  ::close(fd);
  if (rc != 0) return Status::internal("fsync failed on '" + path + "'");
  return Status::ok();
}

void removeTree(const std::string& dir,
                const std::vector<ReproFile>& files) {
  for (const ReproFile& f : files)
    ::unlink((dir + "/" + f.name).c_str());
  ::unlink((dir + "/MANIFEST").c_str());
  ::rmdir(dir.c_str());
}

}  // namespace

Result<std::string> writeReproBundle(const std::string& reproDir,
                                     const std::string& bundleName,
                                     const std::vector<ReproFile>& files) {
  if (reproDir.empty() || bundleName.empty())
    return Status::invalidInput("repro bundle needs a directory and a name");
  for (const ReproFile& f : files) {
    if (f.name.empty() || f.name.find('/') != std::string::npos ||
        f.name == "MANIFEST" || f.name[0] == '.')
      return Status::invalidInput("bad repro file name '" + f.name + "'");
  }
  if (Status s = ensureDirectory(reproDir); !s.isOk()) return s;

  const std::string tmp = reproDir + "/.tmp." + bundleName;
  removeTree(tmp, files);  // a crashed earlier attempt may have left it
  if (::mkdir(tmp.c_str(), 0777) != 0)
    return Status::internal("cannot create staging directory '" + tmp +
                            "': " + std::strerror(errno));

  auto abort = [&](Status s) -> Result<std::string> {
    removeTree(tmp, files);
    return s;
  };
  // The manifest checksums what actually landed on disk (crc32OfFile
  // re-reads every file), so it doubles as a write-back verification.
  std::string manifest;
  for (const ReproFile& f : files) {
    const std::string path = tmp + "/" + f.name;
    if (Status s = writeAndSync(path, f.content); !s.isOk()) return abort(s);
    Result<std::uint32_t> crc = crc32OfFile(path);
    if (!crc.isOk()) return abort(crc.status());
    char line[64];
    std::snprintf(line, sizeof line, "%08x %zu ", crc.value(),
                  f.content.size());
    manifest += line;
    manifest += f.name;
    manifest += '\n';
  }
  if (Status s = writeAndSync(tmp + "/MANIFEST", manifest); !s.isOk())
    return abort(s);
  if (Status s = syncDirectory(tmp); !s.isOk()) return abort(s);

  // Publish: rename into place; on name collision try numbered suffixes.
  std::string finalDir = reproDir + "/" + bundleName;
  for (int suffix = 2; ::rename(tmp.c_str(), finalDir.c_str()) != 0;
       ++suffix) {
    if (errno != ENOTEMPTY && errno != EEXIST && errno != EISDIR)
      return abort(Status::internal("cannot publish repro bundle '" +
                                    finalDir + "': " + std::strerror(errno)));
    if (suffix > 1000)
      return abort(Status::internal("too many repro bundles named '" +
                                    bundleName + "'"));
    finalDir = reproDir + "/" + bundleName + "-" + std::to_string(suffix);
  }
  if (Status s = syncDirectory(reproDir); !s.isOk()) return s;
  return finalDir;
}

}  // namespace syseco
