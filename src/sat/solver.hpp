#pragma once
// Conflict-driven clause-learning SAT solver in the MiniSAT [16] lineage.
//
// The paper validates sampling-domain answers "with a resource-constrained
// SAT solver" (§5.1); the conflict budget on solve() is that resource
// constraint. The solver supports incremental solving under assumptions,
// which the equivalence checker uses to share one CNF across all
// per-output miter queries.
//
// Architecture: two-watched-literal propagation, first-UIP conflict
// analysis with recursive clause minimization, VSIDS variable activities on
// a binary heap, phase saving, Luby restarts, and activity-based learnt
// clause database reduction.

#include <cstdint>
#include <vector>

#include "util/budget.hpp"
#include "util/status.hpp"

namespace syseco {

using Var = std::int32_t;

/// A literal: variable with polarity, encoded as 2*var + (negated ? 1 : 0).
struct Lit {
  std::int32_t x = -2;

  static Lit make(Var v, bool negated = false) {
    return Lit{2 * v + (negated ? 1 : 0)};
  }
  Var var() const { return x >> 1; }
  bool sign() const { return x & 1; }  ///< true when negated
  Lit operator~() const { return Lit{x ^ 1}; }
  bool operator==(const Lit& o) const { return x == o.x; }
  bool operator!=(const Lit& o) const { return x != o.x; }
  bool operator<(const Lit& o) const { return x < o.x; }
};

inline constexpr Lit kLitUndef{-2};

/// Three-valued assignment.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lboolOf(bool b) { return b ? LBool::True : LBool::False; }

class Solver {
 public:
  enum class Result { Sat, Unsat, Unknown };

  Solver();

  /// Allocates a fresh variable.
  Var newVar();
  std::size_t numVars() const { return assigns_.size(); }

  /// Adds a clause. Returns false if the formula became trivially
  /// unsatisfiable (conflicting units at the top level).
  bool addClause(std::vector<Lit> lits);
  bool addClause(Lit a) { return addClause(std::vector<Lit>{a}); }
  bool addClause(Lit a, Lit b) { return addClause(std::vector<Lit>{a, b}); }
  bool addClause(Lit a, Lit b, Lit c) {
    return addClause(std::vector<Lit>{a, b, c});
  }

  /// Solves under the given assumptions. `conflictBudget` < 0 means
  /// unbounded; otherwise the search gives up with Result::Unknown after
  /// that many conflicts (the paper's resource constraint).
  Result solve(const std::vector<Lit>& assumptions = {},
               std::int64_t conflictBudget = -1);

  /// Installs a cooperative resource governor. The search polls it every
  /// few conflicts (and on every restart) and charges each conflict to its
  /// ledger; a tripped guard makes solve() return Result::Unknown with
  /// stopReason() saying why. Pass nullptr to detach. The guard must
  /// outlive every solve() call made while it is installed.
  void setResourceGuard(ResourceGuard* guard) { guard_ = guard; }
  ResourceGuard* resourceGuard() const { return guard_; }

  /// Why the last solve() stopped without an answer: kBudgetExhausted for
  /// an exhausted conflict budget (the explicit argument or the guard's
  /// ledger), kDeadlineExceeded for a passed deadline, kOk after Sat/Unsat.
  StatusCode stopReason() const { return stopReason_; }

  /// Model access after Result::Sat.
  bool modelValue(Var v) const { return model_[v] == LBool::True; }

  /// After Result::Unsat from solve() with assumptions: the subset of
  /// assumptions involved in the final conflict (an unsatisfiable core
  /// over-approximation, MiniSAT's analyzeFinal). Empty when the formula
  /// is unsatisfiable regardless of the assumptions.
  const std::vector<Lit>& failedAssumptions() const { return conflictCore_; }

  /// Statistics.
  std::uint64_t numConflicts() const { return conflicts_; }
  std::uint64_t numDecisions() const { return decisions_; }
  std::uint64_t numPropagations() const { return propagations_; }
  std::size_t numClauses() const { return numProblemClauses_; }

 private:
  using CRef = std::uint32_t;
  static constexpr CRef kCRefUndef = 0xFFFFFFFFu;

  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool deleted = false;
  };

  struct VarOrderHeap {
    // Binary max-heap over variable activities with position index.
    std::vector<Var> heap;
    std::vector<std::int32_t> pos;  // -1 when absent
    const std::vector<double>* act = nullptr;

    bool less(Var a, Var b) const { return (*act)[a] > (*act)[b]; }
    bool contains(Var v) const {
      return v < static_cast<Var>(pos.size()) && pos[v] >= 0;
    }
    void percolateUp(std::size_t i);
    void percolateDown(std::size_t i);
    void insert(Var v);
    void update(Var v);
    Var removeMax();
    bool empty() const { return heap.empty(); }
    void grow(std::size_t n) { pos.resize(n, -1); }
  };

  LBool value(Lit p) const {
    const LBool a = assigns_[p.var()];
    if (a == LBool::Undef) return LBool::Undef;
    return (a == LBool::True) != p.sign() ? LBool::True : LBool::False;
  }
  LBool value(Var v) const { return assigns_[v]; }
  std::int32_t decisionLevel() const {
    return static_cast<std::int32_t>(trailLim_.size());
  }

  void uncheckedEnqueue(Lit p, CRef from);
  CRef propagate();
  void analyze(CRef confl, std::vector<Lit>& learnt, std::int32_t& btLevel);
  void analyzeFinal(Lit p);
  bool litRedundant(Lit p, std::uint32_t abstractLevels);
  void cancelUntil(std::int32_t level);
  Lit pickBranchLit();
  void varBumpActivity(Var v);
  void varDecayActivity() { varInc_ /= 0.95; }
  void claBumpActivity(Clause& c);
  void claDecayActivity() { claInc_ /= 0.999; }
  void rescaleVarActivity();
  CRef attachNewClause(std::vector<Lit> lits, bool learnt);
  void attachWatches(CRef cr);
  void reduceDB();
  Result search(std::int64_t conflictsAllowed,
                const std::vector<Lit>& assumptions);
  static std::int64_t luby(std::int64_t i);

  bool ok_ = true;
  std::vector<Clause> clauses_;
  std::vector<CRef> learnts_;
  std::size_t numProblemClauses_ = 0;
  std::vector<std::vector<CRef>> watches_;  // indexed by literal code
  std::vector<LBool> assigns_;
  std::vector<LBool> model_;
  std::vector<std::uint8_t> polarity_;  // saved phases (1 = last was false)
  std::vector<double> activity_;
  std::vector<CRef> reason_;
  std::vector<std::int32_t> level_;
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trailLim_;
  std::size_t qhead_ = 0;
  VarOrderHeap order_;
  double varInc_ = 1.0;
  double claInc_ = 1.0;
  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyzeToClear_;
  std::vector<Lit> analyzeStack_;
  std::vector<Lit> conflictCore_;

  std::uint64_t conflicts_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t propagations_ = 0;
  double maxLearnts_ = 0.0;
  ResourceGuard* guard_ = nullptr;
  StatusCode stopReason_ = StatusCode::kOk;
};

}  // namespace syseco
