#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace syseco {

// --- Variable order heap ----------------------------------------------------

void Solver::VarOrderHeap::percolateUp(std::size_t i) {
  const Var v = heap[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(v, heap[parent])) break;
    heap[i] = heap[parent];
    pos[heap[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap[i] = v;
  pos[v] = static_cast<std::int32_t>(i);
}

void Solver::VarOrderHeap::percolateDown(std::size_t i) {
  const Var v = heap[i];
  while (2 * i + 1 < heap.size()) {
    std::size_t child = 2 * i + 1;
    if (child + 1 < heap.size() && less(heap[child + 1], heap[child])) ++child;
    if (!less(heap[child], v)) break;
    heap[i] = heap[child];
    pos[heap[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap[i] = v;
  pos[v] = static_cast<std::int32_t>(i);
}

void Solver::VarOrderHeap::insert(Var v) {
  if (contains(v)) return;
  heap.push_back(v);
  pos[v] = static_cast<std::int32_t>(heap.size() - 1);
  percolateUp(heap.size() - 1);
}

void Solver::VarOrderHeap::update(Var v) {
  if (!contains(v)) return;
  percolateUp(static_cast<std::size_t>(pos[v]));
  percolateDown(static_cast<std::size_t>(pos[v]));
}

Var Solver::VarOrderHeap::removeMax() {
  const Var v = heap[0];
  pos[v] = -1;
  heap[0] = heap.back();
  pos[heap[0]] = 0;
  heap.pop_back();
  if (!heap.empty()) percolateDown(0);
  return v;
}

// --- Solver -----------------------------------------------------------------

Solver::Solver() { order_.act = &activity_; }

Var Solver::newVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  model_.push_back(LBool::Undef);
  polarity_.push_back(1);  // default phase: false (MiniSAT convention)
  activity_.push_back(0.0);
  reason_.push_back(kCRefUndef);
  level_.push_back(0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  order_.grow(assigns_.size());
  order_.insert(v);
  return v;
}

bool Solver::addClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  SYSECO_CHECK(decisionLevel() == 0);
  // Normalize: sort, dedupe, drop false literals, detect tautology.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = kLitUndef;
  for (Lit p : lits) {
    SYSECO_CHECK(p.var() >= 0 && p.var() < static_cast<Var>(numVars()));
    if (value(p) == LBool::True || p == ~prev) return true;  // satisfied/taut
    if (value(p) != LBool::False && p != prev) {
      out.push_back(p);
      prev = p;
    }
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    uncheckedEnqueue(out[0], kCRefUndef);
    ok_ = (propagate() == kCRefUndef);
    return ok_;
  }
  attachNewClause(std::move(out), /*learnt=*/false);
  ++numProblemClauses_;
  return true;
}

Solver::CRef Solver::attachNewClause(std::vector<Lit> lits, bool learnt) {
  const CRef cr = static_cast<CRef>(clauses_.size());
  clauses_.push_back(Clause{std::move(lits), 0.0, learnt, false});
  attachWatches(cr);
  if (learnt) learnts_.push_back(cr);
  return cr;
}

void Solver::attachWatches(CRef cr) {
  const Clause& c = clauses_[cr];
  SYSECO_CHECK(c.lits.size() >= 2);
  watches_[(~c.lits[0]).x].push_back(cr);
  watches_[(~c.lits[1]).x].push_back(cr);
}

void Solver::uncheckedEnqueue(Lit p, CRef from) {
  SYSECO_CHECK(value(p) == LBool::Undef);
  assigns_[p.var()] = lboolOf(!p.sign());
  reason_[p.var()] = from;
  level_[p.var()] = decisionLevel();
  trail_.push_back(p);
}

Solver::CRef Solver::propagate() {
  CRef confl = kCRefUndef;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++propagations_;
    std::vector<CRef>& ws = watches_[p.x];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const CRef cr = ws[i];
      Clause& c = clauses_[cr];
      if (c.deleted) {
        ++i;
        continue;  // lazily dropped from the watch list
      }
      // Make sure the false literal is at position 1.
      const Lit falseLit = ~p;
      if (c.lits[0] == falseLit) std::swap(c.lits[0], c.lits[1]);
      SYSECO_CHECK(c.lits[1] == falseLit);
      // Satisfied by the other watch?
      if (value(c.lits[0]) == LBool::True) {
        ws[j++] = cr;
        ++i;
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).x].push_back(cr);
          moved = true;
          break;
        }
      }
      if (moved) {
        ++i;
        continue;
      }
      // Unit or conflicting.
      ws[j++] = cr;
      ++i;
      if (value(c.lits[0]) == LBool::False) {
        confl = cr;
        qhead_ = trail_.size();
        // Copy remaining watches.
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        uncheckedEnqueue(c.lits[0], cr);
      }
    }
    ws.resize(j);
    if (confl != kCRefUndef) break;
  }
  return confl;
}

void Solver::varBumpActivity(Var v) {
  if ((activity_[v] += varInc_) > 1e100) rescaleVarActivity();
  order_.update(v);
}

void Solver::rescaleVarActivity() {
  for (double& a : activity_) a *= 1e-100;
  varInc_ *= 1e-100;
}

void Solver::claBumpActivity(Clause& c) {
  if ((c.activity += claInc_) > 1e20) {
    for (CRef cr : learnts_) clauses_[cr].activity *= 1e-20;
    claInc_ *= 1e-20;
  }
}

void Solver::analyze(CRef confl, std::vector<Lit>& learnt,
                     std::int32_t& btLevel) {
  // First-UIP scheme.
  learnt.clear();
  learnt.push_back(kLitUndef);  // placeholder for the asserting literal
  std::int32_t pathC = 0;
  Lit p = kLitUndef;
  std::size_t index = trail_.size();

  do {
    SYSECO_CHECK(confl != kCRefUndef);
    Clause& c = clauses_[confl];
    if (c.learnt) claBumpActivity(c);
    const std::size_t start = (p == kLitUndef) ? 0 : 1;
    for (std::size_t k = start; k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      if (!seen_[q.var()] && level_[q.var()] > 0) {
        varBumpActivity(q.var());
        seen_[q.var()] = 1;
        if (level_[q.var()] >= decisionLevel()) {
          ++pathC;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Next literal on the trail to resolve on.
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[index - 1];
    --index;
    confl = reason_[p.var()];
    seen_[p.var()] = 0;
    --pathC;
  } while (pathC > 0);
  learnt[0] = ~p;

  // Conflict-clause minimization (recursive, abstraction-guarded).
  analyzeToClear_.assign(learnt.begin(), learnt.end());
  std::uint32_t abstractLevels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i)
    abstractLevels |= 1u << (level_[learnt[i].var()] & 31);
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[learnt[i].var()] == kCRefUndef ||
        !litRedundant(learnt[i], abstractLevels)) {
      learnt[keep++] = learnt[i];
    }
  }
  learnt.resize(keep);
  for (Lit q : analyzeToClear_)
    if (q != kLitUndef) seen_[q.var()] = 0;
  // Note: litRedundant may have set extra seen_ flags; it records them in
  // analyzeToClear_, which we just cleared above.

  // Find the backtrack level: highest level among learnt[1..].
  if (learnt.size() == 1) {
    btLevel = 0;
  } else {
    std::size_t maxI = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i)
      if (level_[learnt[i].var()] > level_[learnt[maxI].var()]) maxI = i;
    std::swap(learnt[1], learnt[maxI]);
    btLevel = level_[learnt[1].var()];
  }
}

bool Solver::litRedundant(Lit p, std::uint32_t abstractLevels) {
  analyzeStack_.clear();
  analyzeStack_.push_back(p);
  const std::size_t top = analyzeToClear_.size();
  while (!analyzeStack_.empty()) {
    const Lit q = analyzeStack_.back();
    analyzeStack_.pop_back();
    SYSECO_CHECK(reason_[q.var()] != kCRefUndef);
    const Clause& c = clauses_[reason_[q.var()]];
    for (std::size_t k = 1; k < c.lits.size(); ++k) {
      const Lit r = c.lits[k];
      if (!seen_[r.var()] && level_[r.var()] > 0) {
        if (reason_[r.var()] != kCRefUndef &&
            ((1u << (level_[r.var()] & 31)) & abstractLevels) != 0) {
          seen_[r.var()] = 1;
          analyzeStack_.push_back(r);
          analyzeToClear_.push_back(r);
        } else {
          // Cannot be resolved away: undo the speculative markings.
          for (std::size_t j = top; j < analyzeToClear_.size(); ++j)
            seen_[analyzeToClear_[j].var()] = 0;
          analyzeToClear_.resize(top);
          return false;
        }
      }
    }
  }
  return true;
}

void Solver::analyzeFinal(Lit p) {
  // `p` is the assumption that propagation forced false. Walk the
  // implication graph of !p back to the assumption decisions: every
  // reason-less marked literal above level 0 is one of the assumptions
  // responsible. The core is reported in assumption polarity (asserting
  // the core alone is already unsatisfiable).
  conflictCore_.clear();
  conflictCore_.push_back(p);
  if (decisionLevel() == 0) return;
  seen_[p.var()] = 1;
  for (std::size_t i = trail_.size();
       i > static_cast<std::size_t>(trailLim_[0]); --i) {
    const Var x = trail_[i - 1].var();
    if (!seen_[x]) continue;
    if (reason_[x] == kCRefUndef) {
      SYSECO_CHECK(level_[x] > 0);
      conflictCore_.push_back(trail_[i - 1]);
    } else {
      const Clause& c = clauses_[reason_[x]];
      for (std::size_t k = 1; k < c.lits.size(); ++k) {
        if (level_[c.lits[k].var()] > 0) seen_[c.lits[k].var()] = 1;
      }
    }
    seen_[x] = 0;
  }
  seen_[p.var()] = 0;
}

void Solver::cancelUntil(std::int32_t level) {
  if (decisionLevel() <= level) return;
  for (std::size_t i = trail_.size();
       i > static_cast<std::size_t>(trailLim_[level]); --i) {
    const Var v = trail_[i - 1].var();
    polarity_[v] = trail_[i - 1].sign() ? 1 : 0;
    assigns_[v] = LBool::Undef;
    reason_[v] = kCRefUndef;
    order_.insert(v);
  }
  trail_.resize(static_cast<std::size_t>(trailLim_[level]));
  trailLim_.resize(static_cast<std::size_t>(level));
  qhead_ = trail_.size();
}

Lit Solver::pickBranchLit() {
  while (!order_.empty()) {
    const Var v = order_.removeMax();
    if (value(v) == LBool::Undef)
      return Lit::make(v, polarity_[v] != 0);
  }
  return kLitUndef;
}

void Solver::reduceDB() {
  // Drop the less active half of the learnt clauses (locked ones stay).
  std::sort(learnts_.begin(), learnts_.end(), [&](CRef a, CRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  std::vector<CRef> kept;
  kept.reserve(learnts_.size());
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    const CRef cr = learnts_[i];
    Clause& c = clauses_[cr];
    const bool locked =
        value(c.lits[0]) == LBool::True && reason_[c.lits[0].var()] == cr;
    if (i < learnts_.size() / 2 && !locked && c.lits.size() > 2) {
      c.deleted = true;  // watch lists skip deleted clauses lazily
      c.lits.clear();
      c.lits.shrink_to_fit();
    } else {
      kept.push_back(cr);
    }
  }
  learnts_ = std::move(kept);
}

std::int64_t Solver::luby(std::int64_t i) {
  // Luby sequence 1,1,2,1,1,2,4,... (1-indexed).
  std::int64_t k = 1;
  while ((std::int64_t{1} << (k + 1)) - 1 <= i) ++k;
  while (i != (std::int64_t{1} << k) - 1) {
    i -= (std::int64_t{1} << k) - 1 - ((std::int64_t{1} << (k - 1)) - 1);
    // Equivalent to i - 2^(k-1) + ... : recompute k for the remainder.
    k = 1;
    while ((std::int64_t{1} << (k + 1)) - 1 <= i) ++k;
  }
  return std::int64_t{1} << (k - 1);
}

Solver::Result Solver::search(std::int64_t conflictsAllowed,
                              const std::vector<Lit>& assumptions) {
  std::int64_t conflictsHere = 0;
  std::vector<Lit> learnt;
  for (;;) {
    const CRef confl = propagate();
    if (confl != kCRefUndef) {
      ++conflicts_;
      ++conflictsHere;
      if (decisionLevel() == 0) return Result::Unsat;
      std::int32_t btLevel = 0;
      analyze(confl, learnt, btLevel);
      cancelUntil(btLevel);
      if (learnt.size() == 1) {
        uncheckedEnqueue(learnt[0], kCRefUndef);
      } else {
        const CRef cr = attachNewClause(learnt, /*learnt=*/true);
        claBumpActivity(clauses_[cr]);
        uncheckedEnqueue(learnt[0], cr);
      }
      varDecayActivity();
      claDecayActivity();
      if (guard_ != nullptr) {
        guard_->chargeConflicts(1);
        if ((conflictsHere & 0x3F) == 0 &&
            !guard_->checkpoint("sat").isOk()) {
          cancelUntil(0);
          stopReason_ = guard_->trippedCode();
          return Result::Unknown;
        }
      }
      if (conflictsHere >= conflictsAllowed) {
        cancelUntil(0);
        return Result::Unknown;  // restart (or budget exhausted)
      }
      if (maxLearnts_ > 0 &&
          static_cast<double>(learnts_.size()) >= maxLearnts_) {
        reduceDB();
        maxLearnts_ *= 1.1;
      }
    } else {
      // Assumptions first, then activity-driven decisions.
      Lit next = kLitUndef;
      while (static_cast<std::size_t>(decisionLevel()) < assumptions.size()) {
        const Lit p = assumptions[static_cast<std::size_t>(decisionLevel())];
        if (value(p) == LBool::True) {
          trailLim_.push_back(static_cast<std::int32_t>(trail_.size()));
        } else if (value(p) == LBool::False) {
          analyzeFinal(p);  // which assumptions forced !p
          return Result::Unsat;  // assumptions are jointly inconsistent
        } else {
          next = p;
          break;
        }
      }
      if (next == kLitUndef &&
          static_cast<std::size_t>(decisionLevel()) >= assumptions.size()) {
        next = pickBranchLit();
        if (next == kLitUndef) {
          // All variables assigned: model found.
          model_ = assigns_;
          return Result::Sat;
        }
        ++decisions_;
        // Propagation-heavy instances can go a long time between
        // conflicts; keep the deadline honest on the decision path too.
        if (guard_ != nullptr && (decisions_ & 0xFFF) == 0 &&
            !guard_->checkpoint("sat").isOk()) {
          cancelUntil(0);
          stopReason_ = guard_->trippedCode();
          return Result::Unknown;
        }
      }
      if (next == kLitUndef) continue;
      trailLim_.push_back(static_cast<std::int32_t>(trail_.size()));
      uncheckedEnqueue(next, kCRefUndef);
    }
  }
}

Solver::Result Solver::solve(const std::vector<Lit>& assumptions,
                             std::int64_t conflictBudget) {
  conflictCore_.clear();
  stopReason_ = StatusCode::kOk;
  if (!ok_) return Result::Unsat;
  // A guard that tripped before the query even starts: answer immediately
  // with the structured reason instead of burning propagation effort.
  if (guard_ != nullptr && !guard_->checkpoint("sat").isOk()) {
    stopReason_ = guard_->trippedCode();
    return Result::Unknown;
  }
  cancelUntil(0);
  if (propagate() != kCRefUndef) {
    ok_ = false;
    return Result::Unsat;
  }
  if (maxLearnts_ == 0)
    maxLearnts_ = std::max(1000.0, static_cast<double>(numProblemClauses_) / 3);

  // The guard's conflict ledger tightens the explicit per-call budget so
  // a nearly-drained governor cannot be overshot by one long query.
  if (guard_ != nullptr) {
    const std::int64_t left = guard_->remainingConflicts();
    if (left >= 0 && (conflictBudget < 0 || left < conflictBudget))
      conflictBudget = left;
  }

  std::int64_t spent = 0;
  for (std::int64_t restarts = 0;; ++restarts) {
    std::int64_t allowed = luby(restarts + 1) * 100;
    if (conflictBudget >= 0) allowed = std::min(allowed, conflictBudget - spent);
    if (allowed <= 0) {
      cancelUntil(0);
      stopReason_ = StatusCode::kBudgetExhausted;
      return Result::Unknown;
    }
    const std::uint64_t before = conflicts_;
    const Result r = search(allowed, assumptions);
    spent += static_cast<std::int64_t>(conflicts_ - before);
    if (stopReason_ != StatusCode::kOk) {
      cancelUntil(0);
      return Result::Unknown;  // guard tripped inside search()
    }
    if (r != Result::Unknown) {
      cancelUntil(0);
      return r;
    }
    if (conflictBudget >= 0 && spent >= conflictBudget) {
      cancelUntil(0);
      stopReason_ = StatusCode::kBudgetExhausted;
      return Result::Unknown;
    }
  }
}

}  // namespace syseco
