#include "eco/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "eco/isolate.hpp"
#include "eco/report.hpp"
#include "eco/resume.hpp"
#include "eco/syseco.hpp"
#include "io/journal_io.hpp"
#include "netlist/analysis.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"
#include "util/io_retry.hpp"
#include "util/ipc.hpp"
#include "util/socket.hpp"
#include "util/status.hpp"
#include "util/subprocess.hpp"

namespace syseco {
namespace {

bool stopped(const FleetAgentOptions& opt) {
  return opt.stop && opt.stop->load(std::memory_order_relaxed);
}

/// Makes sure the cache holds the case `caseCrc` names, fetching it from
/// the supervisor on a miss. Shared by the per-output and whole-case task
/// paths. Returns the resident entry, or null when the connection should be
/// dropped (transport break, bad payload, shutdown).
CaseCacheLru::Entry* ensureCase(int fd, std::string& rx,
                                std::uint32_t caseCrc, CaseCacheLru& cache,
                                const FleetAgentOptions& opt) {
  if (CaseCacheLru::Entry* hit = cache.find(caseCrc)) return hit;
  if (!net::sendFrame(fd, ipc::kTypeFleetNeedCase,
                      encodeFleetNeedCase(caseCrc))
           .isOk())
    return nullptr;
  // The upload can be megabytes of netlist; wait generously but keep the
  // stop flag responsive.
  for (int waited = 0; waited < 60000 && !stopped(opt); waited += 200) {
    net::RecvOutcome out = net::recvFrame(fd, &rx, 200);
    if (out.status == net::RecvStatus::kTimeout) continue;
    if (out.status != net::RecvStatus::kFrame) return nullptr;
    if (out.frame.type != ipc::kTypeFleetCase) return nullptr;
    if (crc32(out.frame.payload) != caseCrc) return nullptr;
    Result<FleetCase> decoded = decodeFleetCase(out.frame.payload);
    if (!decoded.isOk()) {
      std::fprintf(stderr, "[syseco-agent] rejected case payload: %s\n",
                   decoded.status().toString().c_str());
      return nullptr;
    }
    CaseCacheLru::Entry* entry = cache.insert(caseCrc, decoded.take());
    if (opt.verbose) {
      const CaseCacheLru::Stats& cs = cache.stats();
      std::fprintf(stderr,
                   "[syseco-agent] cached case crc=%u (%zu bytes, %zu/%zu "
                   "slots, hits=%llu misses=%llu evictions=%llu)\n",
                   entry->crc, out.frame.payload.size(), cache.size(),
                   cache.slots(), static_cast<unsigned long long>(cs.hits),
                   static_cast<unsigned long long>(cs.misses),
                   static_cast<unsigned long long>(cs.evictions));
    }
    return entry;
  }
  return nullptr;
}

bool sendFailure(int fd, std::uint64_t epoch, WorkerExitCause cause,
                 std::string detail) {
  FleetFailure f;
  f.epoch = epoch;
  f.cause = workerExitCauseName(cause);
  f.detail = std::move(detail);
  return net::sendFrame(fd, ipc::kTypeFleetFailure, encodeFleetFailure(f))
      .isOk();
}

/// No heartbeats, no result, no close: the honest simulation of an agent
/// that accepted work and then wedged. Returns once the supervisor gives
/// up on the connection (or the agent is asked to stop).
bool hangUntilPeerCloses(int fd, std::string& rx,
                         const FleetAgentOptions& opt) {
  while (!stopped(opt)) {
    subprocess::pollReadable({fd}, 200);
    const ioretry::DrainOutcome dr = ioretry::drainNonblockingRaw(fd, &rx);
    if (dr.state != ioretry::DrainState::kOpen) break;
  }
  return false;
}

/// Runs `compute` on a worker thread while this one heartbeats every
/// quarter-lease, so a long search never starves the supervisor's deadline.
/// Returns false when the peer went away mid-compute (the caller finishes,
/// drops the result and takes the next connection - the work cannot be
/// cancelled mid-flight).
bool computeWithHeartbeats(int fd, std::string& rx, std::uint64_t epoch,
                           double leaseSeconds, bool suppressHeartbeats,
                           const std::function<void()>& compute) {
  std::atomic<bool> done{false};
  std::thread worker([&] {
    compute();
    done.store(true, std::memory_order_release);
  });
  const int hbMs =
      std::clamp(static_cast<int>(leaseSeconds * 1000.0 / 4.0), 50, 1000);
  bool peerOpen = true;
  while (!done.load(std::memory_order_acquire)) {
    if (peerOpen) {
      subprocess::pollReadable({fd}, hbMs);
      const ioretry::DrainOutcome dr = ioretry::drainNonblockingRaw(fd, &rx);
      if (dr.state != ioretry::DrainState::kOpen)
        peerOpen = false;
      else if (!suppressHeartbeats)
        (void)net::sendFrame(fd, ipc::kTypeFleetHeartbeat,
                             encodeFleetHeartbeat(epoch));
    } else {
      subprocess::pollReadable({}, hbMs);
    }
  }
  worker.join();
  return peerOpen;
}

/// Serves one task request end to end. Returns false when the connection
/// should be dropped afterwards.
bool serveTask(int fd, std::string& rx, const FleetTaskRequest& req,
               CaseCacheLru& cache, const FleetAgentOptions& opt) {
  if (opt.verbose)
    std::fprintf(stderr,
                 "[syseco-agent] task out=%u attempt=%lld epoch=%llu\n",
                 req.output, static_cast<long long>(req.attempt),
                 static_cast<unsigned long long>(req.epoch));
  CaseCacheLru::Entry* entry = ensureCase(fd, rx, req.caseCrc, cache, opt);
  if (entry == nullptr) return false;
  if (req.output >= entry->c.base.numOutputs())
    return sendFailure(fd, req.epoch, WorkerExitCause::kGarbageIpc,
                       "task output out of range");

  // Agent-side fault sites: "fleet.agent" hits every task; the per-output
  // variant pins the blast radius to one output in tests and CI. (kCrash
  // fires centrally inside fault::fire - std::_Exit(137).)
  bool suppressHeartbeats = false;
  const std::string persite = "fleet.agent.o" + std::to_string(req.output);
  const char* sites[2] = {"fleet.agent", persite.c_str()};
  for (const char* site : sites) {
    const auto kind = fault::fire(site);
    if (!kind) continue;
    switch (*kind) {
      case fault::Kind::kNetReset:
        // Drop the connection between request and result.
        return false;
      case fault::Kind::kNetTruncate: {
        // A complete header promising a payload that never fully arrives,
        // then EOF: the supervisor must classify frame-truncated, not
        // garbage-ipc (the prefix is a perfectly valid frame start).
        const std::string full =
            ipc::encodeFrame(ipc::kTypeFleetResult, std::string(256, 'x'));
        (void)ioretry::writeAllRaw(
            fd, std::string_view(full).substr(0, full.size() / 2), true);
        return false;
      }
      case fault::Kind::kHang:
        return hangUntilPeerCloses(fd, rx, opt);
      case fault::Kind::kGarbageIpc: {
        std::string garbled =
            ipc::encodeFrame(ipc::kTypeFleetResult, "{\"produced\":true}");
        garbled[garbled.size() / 2] =
            static_cast<char>(garbled[garbled.size() / 2] ^ 0x40);
        (void)ioretry::writeAllRaw(fd, garbled, true);
        return true;  // keep serving; the supervisor will drop us
      }
      case fault::Kind::kOom:
        return sendFailure(fd, req.epoch, WorkerExitCause::kOom,
                           "injected allocation failure");
      case fault::Kind::kNetDelay: {
        // Outlive the lease with no heartbeats, then answer anyway: the
        // supervisor must have reclaimed the task by then and must discard
        // this duplicate by epoch.
        const int totalMs =
            static_cast<int>(req.leaseSeconds * 1500.0) + 200;
        for (int waited = 0; waited < totalMs && !stopped(opt); waited += 100)
          subprocess::pollReadable({}, 100);
        suppressHeartbeats = true;
        break;
      }
      default:
        // Engine-internal kinds have no meaning at this site; report a
        // cleanly contained injection.
        return sendFailure(fd, req.epoch, WorkerExitCause::kFaultInjected,
                           "injected fault");
    }
    break;  // a fired fault is handled once
  }

  std::optional<Result<WorkerPatch>> outcome;
  const bool peerOpen = computeWithHeartbeats(
      fd, rx, req.epoch, req.leaseSeconds, suppressHeartbeats, [&] {
        outcome.emplace(runFleetTask(
            entry->c.base, entry->c.spec, entry->c.options, req.output,
            entry->c.protect, entry->baseAnalysis.get(),
            entry->specAnalysis.get()));
      });
  if (!peerOpen) return false;

  Result<WorkerPatch> r = std::move(*outcome);
  if (!r.isOk())
    return sendFailure(fd, req.epoch,
                       r.status().code() == StatusCode::kBudgetExhausted
                           ? WorkerExitCause::kOom
                           : WorkerExitCause::kCrash,
                       r.status().message());
  const WorkerPatch patch = r.take();
  if (opt.verbose)
    std::fprintf(stderr, "[syseco-agent] out=%u done (produced=%d)\n",
                 req.output, patch.produced ? 1 : 0);
  return net::sendFrame(fd, ipc::kTypeFleetResult,
                        encodeFleetResult(req.epoch, patch))
      .isOk();
}

/// Serves one whole-case batch task end to end: runs the full engine on the
/// resident case (same seed and options, agent-local --jobs) and ships back
/// one envelope with the report, the verdicts record and the patched
/// netlist. Returns false when the connection should be dropped afterwards.
bool serveCaseTask(int fd, std::string& rx, const FleetCaseTask& req,
                   CaseCacheLru& cache, const FleetAgentOptions& opt) {
  if (opt.verbose)
    std::fprintf(stderr,
                 "[syseco-agent] case task name=%s jobs=%u attempt=%lld "
                 "epoch=%llu\n",
                 req.name.c_str(), req.jobs,
                 static_cast<long long>(req.attempt),
                 static_cast<unsigned long long>(req.epoch));
  CaseCacheLru::Entry* entry = ensureCase(fd, rx, req.caseCrc, cache, opt);
  if (entry == nullptr) return false;

  // Agent-side fault sites: "fleet.agent.case" hits every case task; the
  // named variant pins the blast radius to one case in tests and CI.
  bool suppressHeartbeats = false;
  const std::string persite = "fleet.agent.case." + req.name;
  const char* sites[2] = {"fleet.agent.case", persite.c_str()};
  for (const char* site : sites) {
    const auto kind = fault::fire(site);
    if (!kind) continue;
    switch (*kind) {
      case fault::Kind::kNetReset:
        return false;
      case fault::Kind::kNetTruncate: {
        const std::string full = ipc::encodeFrame(ipc::kTypeFleetCaseResult,
                                                  std::string(256, 'x'));
        (void)ioretry::writeAllRaw(
            fd, std::string_view(full).substr(0, full.size() / 2), true);
        return false;
      }
      case fault::Kind::kHang:
        return hangUntilPeerCloses(fd, rx, opt);
      case fault::Kind::kGarbageIpc: {
        std::string garbled = ipc::encodeFrame(ipc::kTypeFleetCaseResult,
                                               "{\"epoch\":\"0\"}");
        garbled[garbled.size() / 2] =
            static_cast<char>(garbled[garbled.size() / 2] ^ 0x40);
        (void)ioretry::writeAllRaw(fd, garbled, true);
        return true;  // keep serving; the supervisor will drop us
      }
      case fault::Kind::kOom:
        return sendFailure(fd, req.epoch, WorkerExitCause::kOom,
                           "injected allocation failure");
      case fault::Kind::kNetDelay: {
        // Outlive the lease with no heartbeats, then answer anyway: the
        // supervisor must have reclaimed the case by then and must discard
        // this duplicate by epoch.
        const int totalMs =
            static_cast<int>(req.leaseSeconds * 1500.0) + 200;
        for (int waited = 0; waited < totalMs && !stopped(opt); waited += 100)
          subprocess::pollReadable({}, 100);
        suppressHeartbeats = true;
        break;
      }
      default:
        return sendFailure(fd, req.epoch, WorkerExitCause::kFaultInjected,
                           "injected fault");
    }
    break;  // a fired fault is handled once
  }

  // The whole-case run is the exact function a local `--jobs N` CLI run
  // computes: the wire options carry only the deterministic search-shaping
  // fields, and `jobs` arrives with the task (bit-identity holds for every
  // jobs value).
  SysecoOptions wopt = entry->c.options;
  wopt.jobs = req.jobs;
  std::optional<Result<EcoResult>> outcome;
  SysecoDiagnostics diag;
  const bool peerOpen = computeWithHeartbeats(
      fd, rx, req.epoch, req.leaseSeconds, suppressHeartbeats, [&] {
        outcome.emplace(
            runSysecoChecked(entry->c.base, entry->c.spec, wopt, &diag));
      });
  if (!peerOpen) return false;

  Result<EcoResult> r = std::move(*outcome);
  if (!r.isOk())
    return sendFailure(fd, req.epoch,
                       r.status().code() == StatusCode::kBudgetExhausted
                           ? WorkerExitCause::kOom
                           : WorkerExitCause::kCrash,
                       r.status().message());
  EcoResult result = r.take();
  FleetCaseResult res;
  res.epoch = req.epoch;
  res.exitCode =
      result.success ? (diag.resourceDegraded() ? 4 : 0) : 1;
  res.report = runReportText("syseco", result, diag, wopt.audit,
                             wopt.oracle.enabled, res.exitCode);
  if (wopt.oracle.enabled)
    res.verdicts = serializeVerdicts(makeVerdictsRecord(diag));
  res.netlist = result.rectified.dumpRawString();
  const CaseCacheLru::Stats& cs = cache.stats();
  res.cacheHits = cs.hits;
  res.cacheMisses = cs.misses;
  res.cacheEvictions = cs.evictions;
  if (opt.verbose)
    std::fprintf(stderr,
                 "[syseco-agent] case %s done exit=%d (cache hits=%llu "
                 "misses=%llu evictions=%llu)\n",
                 req.name.c_str(), res.exitCode,
                 static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses),
                 static_cast<unsigned long long>(cs.evictions));
  return net::sendFrame(fd, ipc::kTypeFleetCaseResult,
                        encodeFleetCaseResult(res))
      .isOk();
}

void serveConnection(int fd, CaseCacheLru& cache,
                     const FleetAgentOptions& opt) {
  std::string rx;
  while (!stopped(opt)) {
    net::RecvOutcome out = net::recvFrame(fd, &rx, 200);
    if (out.status == net::RecvStatus::kTimeout) continue;
    if (out.status != net::RecvStatus::kFrame) return;
    if (out.frame.type == ipc::kTypeFleetTask) {
      Result<FleetTaskRequest> req =
          decodeFleetTaskRequest(out.frame.payload);
      if (!req.isOk()) return;
      if (!serveTask(fd, rx, req.value(), cache, opt)) return;
    } else if (out.frame.type == ipc::kTypeFleetCaseTask) {
      Result<FleetCaseTask> req = decodeFleetCaseTask(out.frame.payload);
      if (!req.isOk()) return;
      if (!serveCaseTask(fd, rx, req.value(), cache, opt)) return;
    } else {
      return;
    }
  }
}

}  // namespace

CaseCacheLru::Entry* CaseCacheLru::lookup(std::uint32_t crc) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->crc != crc) continue;
    entries_.splice(entries_.begin(), entries_, it);
    return &entries_.front();
  }
  return nullptr;
}

CaseCacheLru::Entry* CaseCacheLru::find(std::uint32_t crc) {
  Entry* hit = lookup(crc);
  if (hit)
    ++stats_.hits;
  else
    ++stats_.misses;
  return hit;
}

CaseCacheLru::Entry* CaseCacheLru::insert(std::uint32_t crc, FleetCase c) {
  if (Entry* hit = lookup(crc)) {
    // Same key re-uploaded (e.g. after a supervisor reconnect): refresh the
    // payload in place rather than holding two copies of one family.
    hit->c = std::move(c);
    hit->baseAnalysis = std::make_unique<NetlistAnalysis>(hit->c.base);
    hit->specAnalysis = std::make_unique<NetlistAnalysis>(hit->c.spec);
    return hit;
  }
  while (entries_.size() >= slots_) {
    entries_.pop_back();
    ++stats_.evictions;
  }
  entries_.emplace_front();
  Entry& e = entries_.front();
  e.crc = crc;
  e.c = std::move(c);
  e.baseAnalysis = std::make_unique<NetlistAnalysis>(e.c.base);
  e.specAnalysis = std::make_unique<NetlistAnalysis>(e.c.spec);
  return &e;
}

std::vector<std::uint32_t> CaseCacheLru::keysMruFirst() const {
  std::vector<std::uint32_t> keys;
  keys.reserve(entries_.size());
  for (const Entry& e : entries_) keys.push_back(e.crc);
  return keys;
}

Status runWorkerAgent(const FleetAgentOptions& opt) {
  ioretry::ignoreSigpipeOnce();
  std::uint16_t bound = 0;
  Result<int> listening = net::listenOn(opt.port, &bound);
  if (!listening.isOk()) return listening.status();
  int listenFd = listening.take();
  if (opt.boundHook) opt.boundHook(bound);
  if (opt.verbose)
    std::fprintf(stderr, "[syseco-agent] listening on port %u\n",
                 static_cast<unsigned>(bound));
  // The case cache outlives connections on purpose: a supervisor that
  // reconnects after a transport hiccup skips the netlist re-upload, and a
  // --serve daemon fanning jobs across a few netlist families keeps each
  // family resident (LRU eviction beyond cacheSlots).
  CaseCacheLru cache(opt.cacheSlots);
  while (!stopped(opt)) {
    int softErr = 0;
    Result<int> client = net::acceptClient(listenFd, 200, &softErr);
    if (!client.isOk()) {
      net::closeSocket(listenFd);
      return client.status();
    }
    int fd = client.take();
    if (fd < 0) {
      if (softErr != 0) {
        // fd exhaustion (EMFILE/ENFILE) or a peer-aborted connect: back off
        // briefly so the fd table can drain, then keep serving. Dying here
        // would turn a load spike into a fleet-wide outage.
        std::fprintf(stderr,
                     "[syseco-agent] accept backoff: errno %d (%s); "
                     "retrying\n",
                     softErr, std::strerror(softErr));
        subprocess::pollReadable({}, 200);
      }
      continue;  // accept timeout or soft failure; re-check the stop flag
    }
    if (opt.verbose)
      std::fprintf(stderr, "[syseco-agent] supervisor connected\n");
    serveConnection(fd, cache, opt);
    net::closeSocket(fd);
    if (opt.verbose)
      std::fprintf(stderr, "[syseco-agent] supervisor disconnected\n");
    if (opt.serveOnce) break;
  }
  net::closeSocket(listenFd);
  return Status::ok();
}

}  // namespace syseco
