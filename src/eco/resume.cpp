#include "eco/resume.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>

#include "cnf/encode.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace syseco {

namespace {

std::optional<StatusCode> statusCodeFromName(const std::string& name) {
  for (StatusCode c : {StatusCode::kOk, StatusCode::kBudgetExhausted,
                       StatusCode::kDeadlineExceeded, StatusCode::kInvalidInput,
                       StatusCode::kInternal}) {
    if (name == statusCodeName(c)) return c;
  }
  return std::nullopt;
}

std::optional<OutputRectStatus> rectStatusFromName(const std::string& name) {
  for (OutputRectStatus s :
       {OutputRectStatus::kExact, OutputRectStatus::kDegraded,
        OutputRectStatus::kFallback}) {
    if (name == outputRectStatusName(s)) return s;
  }
  return std::nullopt;
}

JournalOutputReport toJournalReport(const OutputReport& r) {
  JournalOutputReport j;
  j.output = r.output;
  j.name = r.name;
  j.status = outputRectStatusName(r.status);
  j.limit = statusCodeName(r.limit);
  j.conflictsUsed = r.conflictsUsed;
  j.bddNodesUsed = r.bddNodesUsed;
  j.seconds = r.seconds;
  j.degradeSteps = r.degradeSteps;
  j.attempts = r.workerFailedAttempts;
  j.exitCause = workerExitCauseName(r.workerExitCause);
  return j;
}

/// Inverse of toJournalReport; nullopt when a name does not map back (a
/// record from a newer schema, or tampering).
std::optional<OutputReport> fromJournalReport(const JournalOutputReport& j,
                                              const Netlist& impl) {
  const auto status = rectStatusFromName(j.status);
  const auto limit = statusCodeFromName(j.limit);
  const auto exitCause = workerExitCauseFromName(j.exitCause);
  if (!status || !limit || !exitCause) return std::nullopt;
  if (j.output >= impl.numOutputs()) return std::nullopt;
  if (j.name != impl.outputName(j.output)) return std::nullopt;
  if (j.degradeSteps < 0 || j.degradeSteps > 1000000) return std::nullopt;
  if (j.attempts < 0 || j.attempts > 1000000) return std::nullopt;
  OutputReport r;
  r.output = j.output;
  r.name = j.name;
  r.status = *status;
  r.limit = *limit;
  r.conflictsUsed = j.conflictsUsed;
  r.bddNodesUsed = j.bddNodesUsed;
  r.seconds = j.seconds;
  r.degradeSteps = static_cast<int>(j.degradeSteps);
  r.workerFailedAttempts = static_cast<int>(j.attempts);
  r.workerExitCause = *exitCause;
  return r;
}

/// Structural validation + independent SAT re-certification of one output
/// record. Returns the reason for demotion, or nullopt and fills `out`.
std::optional<std::string> tryAdopt(const JournalOutputRecord& rec,
                                    const JournalRunStart& rs,
                                    const Netlist& impl, const Netlist& spec,
                                    ResumeOutcome* out) {
  Result<Netlist> restored = Netlist::restoreRawString(rec.netlistDump);
  if (!restored.isOk())
    return "snapshot rejected (" + restored.status().message() + ")";
  Netlist w = restored.take();

  // The snapshot must present the implementation's exact interface.
  if (w.numInputs() != impl.numInputs() ||
      w.numOutputs() != impl.numOutputs())
    return "snapshot interface does not match the implementation";
  for (std::uint32_t i = 0; i < impl.numInputs(); ++i)
    if (w.inputName(i) != impl.inputName(i))
      return "snapshot input labels do not match the implementation";
  for (std::uint32_t o = 0; o < impl.numOutputs(); ++o)
    if (w.outputName(o) != impl.outputName(o))
      return "snapshot output labels do not match the implementation";

  // Tracker accounting must be anchored at the original netlist and refer
  // only into the snapshot.
  const JournalTrackerState& t = rec.tracker;
  if (t.baseGates != impl.numGatesTotal() ||
      t.baseNets != impl.numNetsTotal())
    return "tracker base counts do not match the implementation";
  if (t.baseGates > w.numGatesTotal() || t.baseNets > w.numNetsTotal())
    return "tracker base counts exceed the snapshot";
  for (const JournalRewire& r : t.rewires) {
    if (r.oldNet >= w.numNetsTotal() || r.newNet >= w.numNetsTotal())
      return "tracker rewire net out of range";
    if (r.gate == kNullId) {
      if (r.port >= w.numOutputs()) return "tracker rewire output out of range";
    } else {
      if (r.gate >= w.numGatesTotal() ||
          r.port >= w.gate(r.gate).fanins.size())
        return "tracker rewire pin out of range";
    }
  }
  for (const auto& [specNet, here] : t.cloneCache) {
    if (specNet >= spec.numNetsTotal() || here >= w.numNetsTotal())
      return "tracker clone-cache entry out of range";
  }

  // Reports: well-named, in the journaled plan, no duplicates.
  if (rec.reports.empty()) return "output record carries no reports";
  std::vector<OutputReport> restoredReports;
  std::set<std::uint32_t> claimed;
  for (const JournalOutputReport& j : rec.reports) {
    const auto mapped = fromJournalReport(j, impl);
    if (!mapped) return "unmappable output report";
    if (!claimed.insert(mapped->output).second)
      return "duplicate report for output " + std::to_string(mapped->output);
    if (std::find(rs.order.begin(), rs.order.end(), mapped->output) ==
        rs.order.end())
      return "report for output " + std::to_string(mapped->output) +
             " outside the journaled plan";
    restoredReports.push_back(*mapped);
  }
  if (rec.report.output != rec.reports.back().output)
    return "record's own report disagrees with its cumulative list";

  // Independent re-certification: a fresh unbounded SAT miter per claimed
  // output, against the snapshot. The journal's verdict is never trusted.
  {
    PairEncoding pe(w, spec);
    Rng rng(0x5eedu);
    for (std::uint32_t o : claimed) {
      const std::uint32_t op = spec.findOutput(w.outputName(o));
      if (op == kNullId)
        return "claimed output " + std::to_string(o) + " has no spec match";
      if (pe.solveDiffSwept(o, op, /*conflictBudget=*/-1, rng) !=
          Solver::Result::Unsat)
        return "output " + std::to_string(o) +
               " failed independent re-certification";
    }
  }

  out->adopted = true;
  out->netlist = std::move(w);
  out->certified.assign(claimed.begin(), claimed.end());
  ResumePlan& plan = out->plan;
  plan.failingOutputsBefore =
      static_cast<std::size_t>(rs.failingOutputsBefore);
  plan.order = rs.order;
  plan.restored = std::move(restoredReports);
  plan.conflictsUsed = rec.conflictsUsed;
  plan.bddNodesUsed = rec.bddNodesUsed;
  plan.tracker.baseGates = static_cast<std::size_t>(t.baseGates);
  plan.tracker.baseNets = static_cast<std::size_t>(t.baseNets);
  for (const JournalRewire& r : t.rewires)
    plan.tracker.rewires.push_back(PatchTracker::RewireRecord{
        Sink{r.gate, r.port}, r.oldNet, r.newNet});
  plan.tracker.cloneCache = t.cloneCache;
  // The CRC-verified original netlist: the parallel engine's speculative
  // workers search from the unpatched base, so a resumed run must carry it
  // alongside the restored snapshot to reproduce the same worker results.
  plan.base = impl;
  return std::nullopt;
}

}  // namespace

std::uint32_t netlistCrc(const Netlist& nl) {
  return crc32(nl.dumpRawString());
}

std::string sysecoOptionsFingerprint(const SysecoOptions& o) {
  std::ostringstream os;
  os << "syseco-options-v1"
     << ";samples=" << o.numSamples << ";points=" << o.maxPoints
     << ";pins=" << o.maxCandidatePins << ";nets=" << o.maxRewireNets
     << ";sets=" << o.maxPointSets << ";choices=" << o.maxChoices
     << ";refine=" << o.maxRefineIters << ";vbudget=" << o.validationBudget
     << ";sbudget=" << o.samplingBudget << ";bddlimit=" << o.bddNodeLimit
     << ";errsample=" << o.useErrorDomainSampling
     << ";utility=" << o.useUtilityHeuristic
     << ";trivial=" << o.includeTrivialCandidate
     << ";sweep=" << o.enableSweeping << ";synth=" << o.synthesizeFunctions
     << ";level=" << o.levelDriven << ";deadline=" << o.deadlineSeconds
     << ";tconf=" << o.totalConflictBudget
     << ";tbdd=" << o.totalBddNodeBudget;
  return os.str();
}

Result<ResumeOutcome> prepareResume(const Netlist& impl, const Netlist& spec,
                                    const SysecoOptions& options,
                                    const JournalContents& journal) {
  ResumeOutcome out;
  out.notes = journal.diagnostics;

  if (!journal.hasRunStart) {
    if (!journal.outputs.empty()) {
      out.demotedRecords = journal.outputs.size();
      out.notes.push_back(
          "no intact run_start record; every checkpoint demoted to redo");
    }
    return out;
  }

  // Identity gate: a journal recorded for different inputs is a user
  // error, not a recoverable corruption - resuming it would splice two
  // unrelated searches into one patch.
  const JournalRunStart& rs = journal.runStart;
  const auto stale = [](const std::string& what) {
    return Status::invalidInput("journal does not match this run: " + what);
  };
  if (rs.engine != "syseco") return stale("engine '" + rs.engine + "'");
  if (rs.version != kJournalSchemaVersion)
    return stale("schema version " + std::to_string(rs.version));
  if (rs.implCrc != netlistCrc(impl))
    return stale("implementation netlist changed");
  if (rs.specCrc != netlistCrc(spec))
    return stale("specification netlist changed");
  if (rs.optionsFingerprint != sysecoOptionsFingerprint(options))
    return stale("engine options changed");
  if (rs.seed != options.seed) return stale("seed changed");
  for (std::uint32_t o : rs.order)
    if (o >= impl.numOutputs()) return stale("planned output out of range");

  // Newest checkpoint first: each output record is self-contained, so the
  // first one that survives validation and re-certification wins and older
  // records (even corrupt ones) are irrelevant.
  for (std::size_t i = journal.outputs.size(); i-- > 0;) {
    const JournalOutputRecord& rec = journal.outputs[i];
    const auto why = tryAdopt(rec, rs, impl, spec, &out);
    if (!why) {
      out.notes.push_back("journal.jsonl line " + std::to_string(rec.line) +
                          ": checkpoint adopted (" +
                          std::to_string(out.certified.size()) +
                          " outputs re-certified)");
      break;
    }
    ++out.demotedRecords;
    out.notes.push_back("journal.jsonl line " + std::to_string(rec.line) +
                        ": checkpoint demoted to redo: " + *why);
  }
  return out;
}

JournalRunStart makeRunStartRecord(const Netlist& impl, const Netlist& spec,
                                   const SysecoOptions& options,
                                   const std::vector<std::uint32_t>& order,
                                   std::size_t failingOutputsBefore) {
  JournalRunStart rs;
  rs.engine = "syseco";
  rs.implCrc = netlistCrc(impl);
  rs.specCrc = netlistCrc(spec);
  rs.optionsFingerprint = sysecoOptionsFingerprint(options);
  rs.seed = options.seed;
  rs.failingOutputsBefore = failingOutputsBefore;
  rs.order = order;
  return rs;
}

JournalOutputRecord makeOutputRecord(const RunCheckpoint& cp) {
  JournalOutputRecord rec;
  rec.report = toJournalReport(cp.report);
  for (const OutputReport& r : cp.reports)
    rec.reports.push_back(toJournalReport(r));
  rec.conflictsUsed = cp.conflictsUsed;
  rec.bddNodesUsed = cp.bddNodesUsed;
  rec.completed = cp.completed;
  rec.planned = cp.planned;
  const PatchTracker::State state = cp.tracker.state();
  rec.tracker.baseGates = state.baseGates;
  rec.tracker.baseNets = state.baseNets;
  for (const PatchTracker::RewireRecord& r : state.rewires)
    rec.tracker.rewires.push_back(
        JournalRewire{r.sink.gate, r.sink.port, r.oldNet, r.newNet});
  rec.tracker.cloneCache = state.cloneCache;
  rec.netlistDump = cp.working.dumpRawString();
  return rec;
}

JournalVerdicts makeVerdictsRecord(const SysecoDiagnostics& diag) {
  JournalVerdicts v;
  v.disagreements = diag.oracleDisagreements.size();
  for (const OutputCertificate& c : diag.certificates) {
    JournalVerdictEntry e;
    e.output = c.output;
    e.name = c.name;
    e.sat = routeVerdictName(c.sat.verdict);
    e.bdd = routeVerdictName(c.bdd.verdict);
    e.sim = routeVerdictName(c.sim.verdict);
    e.certified = c.certified;
    v.entries.push_back(std::move(e));
  }
  return v;
}

}  // namespace syseco
