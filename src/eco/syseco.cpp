#include "eco/syseco.hpp"

#include <algorithm>
#include <bit>
#include <csignal>
#include <cstdio>
#include <future>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "bdd/bdd.hpp"
#include "cnf/encode.hpp"
#include "eco/isolate.hpp"
#include "eco/matching.hpp"
#include "eco/sampling.hpp"
#include "eco/sharpsat.hpp"
#include "netlist/analysis.hpp"
#include "util/budget.hpp"
#include "util/build_info.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"
#include "util/io_retry.hpp"
#include "util/ipc.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"
#include "util/status.hpp"
#include "util/subprocess.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "verify/repro.hpp"

namespace syseco {

namespace {

/// Candidate rectification point with an error-domain observability score.
/// Either a single sink pin of the failing output's cone (or the output
/// itself), or a *group* of sink pins sharing one driving net - rewiring
/// the group replaces that net inside the cone while protecting its other
/// sinks (the paper's Figure 1 "all but one sink" pattern generalized; the
/// group shares one free variable y_i, so m stays small).
struct PinCandidate {
  std::vector<Sink> sinks;
  NetId driver = kNullId;
  std::size_t score = 0;
  std::uint32_t driverLevel = 0;  ///< arrival of the current driver
  /// Error-sample observability mask of the point (which error samples the
  /// pin can flip); drives required-function synthesis.
  std::vector<std::uint64_t> obsMask;
  /// Observability over *all* genuine samples; samples outside it are
  /// don't-cares for this point's required function.
  std::vector<std::uint64_t> obsFullMask;

  bool isOutputPin() const {
    return sinks.size() == 1 && sinks[0].isOutput();
  }
};

/// Candidate rewiring net for one rectification point (paper §4.3).
struct NetCandidate {
  NetId net = kNullId;   ///< net in W, or in the spec when fromSpec
  bool fromSpec = false;
  double utility = 0.0;  ///< error-domain difference ratio (§4.3)
  std::uint32_t level = 0;
  std::uint32_t cloneCost = 0;   ///< approx. gates a spec clone would add
  std::ptrdiff_t rankScore = 0;  ///< balanced sample-agreement key
  Signature sig;                 ///< sampled function of the candidate
};

/// One concrete rewire operation R = p1/s1,...,pm/sm.
struct RewireChoice {
  std::vector<std::size_t> pick;  ///< candidate index per point
  double cost = 0.0;
  /// Tie-break: total arrival of the touched pins' drivers. Upstream
  /// rewires win ties - they perturb less and their patch logic is more
  /// reusable by later outputs.
  std::uint64_t tieLevel = 0;
};

std::uint64_t pinKey(const Sink& s) {
  return (static_cast<std::uint64_t>(s.gate) << 32) | s.port;
}

/// Per-word partial derivative of a gate output w.r.t. fanin `port`,
/// evaluated at simulated values (classic observability approximation).
std::uint64_t derivWord(GateType type, const std::vector<const Signature*>& in,
                        std::size_t port, std::size_t w) {
  switch (type) {
    case GateType::Const0:
    case GateType::Const1:
      return 0;
    case GateType::Buf:
    case GateType::Not:
    case GateType::Xor:
    case GateType::Xnor:
      return ~0ULL;
    case GateType::And:
    case GateType::Nand: {
      std::uint64_t d = ~0ULL;
      for (std::size_t i = 0; i < in.size(); ++i)
        if (i != port) d &= (*in[i])[w];
      return d;
    }
    case GateType::Or:
    case GateType::Nor: {
      std::uint64_t d = ~0ULL;
      for (std::size_t i = 0; i < in.size(); ++i)
        if (i != port) d &= ~(*in[i])[w];
      return d;
    }
    case GateType::Mux: {
      const std::uint64_t sel = (*in[0])[w];
      if (port == 0) return (*in[1])[w] ^ (*in[2])[w];
      if (port == 1) return ~sel;
      return sel;
    }
  }
  return 0;
}

// SupportTable and the other shared structural analyses moved to
// netlist/analysis.hpp (NetlistAnalysis): they are computed once per
// netlist snapshot and shared read-only across outputs and worker threads.

struct AttemptOutcome {
  bool applied = false;
  std::vector<InputPattern> counterexamples;        ///< SAT refutations
  std::vector<InputPattern> screenCounterexamples;  ///< sim-screen refutations
  /// Resource trip that cut this attempt short; the refinement loop stops
  /// iterating and degrades to the fallback when set.
  StatusCode limit = StatusCode::kOk;
};

/// Pre-simulated reference data for the cheap validation screen: the
/// current samples plus a block of random patterns, the spec's output
/// signatures, and the implementation's *base* values so each candidate
/// only re-simulates its affected region (incremental ECO simulation).
struct SimScreen {
  SampleSet patterns;               ///< samples + random screen patterns
  std::size_t sampleCount = 0;      ///< leading patterns that are samples
  std::vector<Signature> specOut;   ///< spec signature per *impl* output idx
  std::unique_ptr<Simulator> base;  ///< W values before any tentative rewire
  std::size_t baseNets = 0;         ///< nets covered by `base`
  std::vector<std::uint32_t> topoIndex;  ///< gate -> base topological rank
};

class Engine {
 public:
  Engine(const Netlist& impl, const Netlist& spec,
         const SysecoOptions& options, SysecoDiagnostics& diag)
      : spec_(spec),
        opt_(options),
        diag_(diag),
        rng_(options.seed),
        rootGuard_(ResourceGuard::Limits{options.deadlineSeconds,
                                         options.totalConflictBudget,
                                         options.totalBddNodeBudget}) {
    result_.rectified = impl;
  }

  EcoResult run() {
    Timer timer;
    const ResumePlan* plan = opt_.resumePlan;
    if (plan)
      trackerStore_.emplace(result_.rectified, plan->tracker);
    else
      trackerStore_.emplace(result_.rectified);
    tracker_ = &*trackerStore_;
    Netlist& w = working();
    // A restored snapshot crossed a serialization boundary; audit it before
    // the search trusts any of its structure.
    if (plan) auditBoundary("post-resume-restore");

    // Structural analyses of the (immutable) specification: computed once
    // and shared read-only by every output and every worker thread.
    ownedSpecAnalysis_ = std::make_unique<NetlistAnalysis>(spec_);
    specAnalysis_ = ownedSpecAnalysis_.get();

    // Speculative parallel mode needs a resource-unlimited run (fair-share
    // slicing is inherently completion-order-dependent) and, on resume, a
    // plan that carries the unpatched base netlist.
    const bool speculative =
        !rootGuard_.limited() && (!plan || plan->base.numOutputs() > 0);

    std::vector<std::uint32_t> failing;
    if (plan) {
      // Resume: the journal already proved which outputs were failing and
      // in what order they were (and must keep being) processed - the
      // order was computed against the unpatched netlist, which no longer
      // exists. Outputs with an adopted report are skipped outright.
      result_.failingOutputsBefore = plan->failingOutputsBefore;
      restoredConflicts_ = plan->conflictsUsed;
      restoredBddNodes_ = plan->bddNodesUsed;
      diag_.outputs = plan->restored;
      std::unordered_set<std::uint32_t> done;
      for (const OutputReport& r : plan->restored) done.insert(r.output);
      for (std::uint32_t o : plan->order) {
        if (done.count(o)) continue;
        failing.push_back(o);
        failingSet_.insert(o);
      }
      plannedOutputs_ = plan->order.size();
      if (speculative) {
        ownedBaseAnalysis_ = std::make_unique<NetlistAnalysis>(plan->base);
        baseAnalysis_ = ownedBaseAnalysis_.get();
      }
    } else {
      // Failing-output detection runs under the governor: outputs it cannot
      // confirm healthy in time are treated as failing, so they end up
      // provably correct via the fallback instead of silently unchecked.
      std::vector<std::uint32_t> unresolved;
      failing =
          findFailingOutputs(w, spec_, rng_, -1, &rootGuard_, &unresolved);
      result_.failingOutputsBefore = failing.size();
      failing.insert(failing.end(), unresolved.begin(), unresolved.end());
      failingSet_.insert(failing.begin(), failing.end());

      // Shared structural analyses of the still-unpatched netlist. Also
      // backs the plan ordering below (the cone lists are precomputed).
      ownedBaseAnalysis_ = std::make_unique<NetlistAnalysis>(w);
      baseAnalysis_ = ownedBaseAnalysis_.get();

      // Increasing logical complexity: smallest cones first (§5.2).
      std::sort(failing.begin(), failing.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return baseAnalysis_->outputConeSize(a) <
                         baseAnalysis_->outputConeSize(b);
                });
      plannedOutputs_ = failing.size();
      if (opt_.planHook) opt_.planHook(failing, result_.failingOutputsBefore);
    }

    const bool interrupted =
        speculative
            ? (!opt_.workers.empty() ? runFleet(failing, plan)
               : opt_.isolate        ? runIsolated(failing, plan)
                                     : runSpeculative(failing, plan))
            : runSequential(failing);
    diag_.interrupted = interrupted;

    if (!interrupted) {
      Timer phase;
      // Sweeping is optional polish; an exhausted governor skips it and
      // keeps the (larger but correct) patch.
      if (opt_.enableSweeping && !rootGuard_.exhausted()) sweepPatch();
      diag_.secondsSweep += phase.seconds();
      if (opt_.audit == AuditLevel::kParanoid) auditBoundary("post-sweep");
    }

    diag_.runLimit = rootGuard_.trippedCode();
    diag_.conflictsUsed =
        restoredConflicts_ + rootGuard_.conflictsUsed() + extraConflicts_;
    diag_.bddNodesUsed =
        restoredBddNodes_ + rootGuard_.bddNodesUsed() + extraBddNodes_;

    if (!interrupted) {
      result_.stats = tracker().finalize();
      if (opt_.audit == AuditLevel::kParanoid) auditBoundary("pre-verify");
      // Final verification is the soundness gate: it always runs unbounded,
      // whatever the governor says - a degraded run still proves its patch.
      Timer verifyPhase;
      if (opt_.oracle.enabled) {
        certifyRun();
      } else if (speculative && opt_.jobs > 1) {
        ThreadPool pool(opt_.jobs);
        result_.success = verifyAllOutputs(result_.rectified, spec_, pool);
      } else {
        result_.success = verifyAllOutputs(result_.rectified, spec_);
      }
      diag_.secondsVerify += verifyPhase.seconds();
    }
    result_.seconds = timer.seconds();
    return std::move(result_);
  }

 private:
  Netlist& working() { return result_.rectified; }
  PatchTracker& tracker() { return *tracker_; }

  /// The original fair-share sequential cascade. Used whenever the governor
  /// imposes limits (slice sizes depend on completion order, so speculation
  /// cannot reproduce them) or a hand-built resume plan lacks the base
  /// netlist. Returns true when a checkpoint hook interrupted the run.
  bool runSequential(const std::vector<std::uint32_t>& failing) {
    Netlist& w = working();
    bool interrupted = false;
    for (std::size_t k = 0; k < failing.size() && !interrupted; ++k) {
      // Fair-share slicing: each output is entitled to 1/left of whatever
      // conflicts, nodes and time remain - one pathological output cannot
      // starve the outputs behind it.
      const std::size_t left = failing.size() - k;
      double perOutputSeconds = 0.0;
      const double remaining = rootGuard_.remainingSeconds();
      if (remaining < 1e17)
        perOutputSeconds =
            std::max(remaining, 0.0) / static_cast<double>(left);
      ResourceGuard outGuard =
          rootGuard_.sliceSeconds(left, perOutputSeconds);
      const bool reported = rectifyOutput(failing[k], outGuard);
      if (reported) auditBoundary("post-patch-commit");
      if (reported && opt_.checkpointHook) {
        const RunCheckpoint cp{
            diag_.outputs.back(),
            diag_.outputs,
            w,
            tracker(),
            diag_.outputs.size(),
            plannedOutputs_,
            restoredConflicts_ + rootGuard_.conflictsUsed(),
            restoredBddNodes_ + rootGuard_.bddNodesUsed()};
        if (!opt_.checkpointHook(cp)) interrupted = true;
      }
    }
    return interrupted;
  }

  /// Speculative parallel cascade: every planned output is searched by an
  /// independent worker engine against the unpatched base snapshot, and the
  /// results are committed strictly in plan order. Each per-output search is
  /// a pure function of (base netlist, spec, options, output) - the RNG is
  /// reseeded per output and worker resources are unlimited - and every
  /// commit-time decision is a deterministic function of the canonical
  /// state, so the patch, reports and journal are bit-identical for every
  /// jobs value. Returns true when a checkpoint hook interrupted the run.
  bool runSpeculative(const std::vector<std::uint32_t>& failing,
                      const ResumePlan* plan) {
    Netlist& w = working();
    // Workers search from the unpatched base. When not resuming, w *is*
    // that base right now - but it mutates as commits land, so snapshot it.
    const Netlist base = plan ? plan->base : w;
    commitBaseGates_ = base.numGatesTotal();
    commitBaseNets_ = base.numNetsTotal();

    const SysecoOptions workerOpt = makeWorkerOptions();

    // Workers protect the *full* planned output set, not just the still-
    // pending remainder: an uninterrupted run's workers see every planned
    // output as failing, and a resumed run must reproduce those workers
    // bit-exactly even though some outputs are already committed.
    const std::vector<std::uint32_t>& protect = plan ? plan->order : failing;

    struct WorkerSlot {
      SysecoDiagnostics frag;
      std::unique_ptr<Engine> engine;
      bool produced = false;
      std::future<void> fut;
    };
    std::vector<WorkerSlot> slots(failing.size());
    // jobs=1 degenerates to a zero-thread pool whose submit() runs the task
    // inline, with a launch window of 1: the worker for output k runs
    // exactly at commit time, in commit order, through the same code path
    // as jobs>1. (The pool is declared after `slots` so it joins - and the
    // in-flight tasks finish - before the slots they write into go away.)
    ThreadPool pool(opt_.jobs > 1 ? opt_.jobs : 0);
    const std::size_t window =
        opt_.jobs > 1 ? std::max<std::size_t>(2 * opt_.jobs, 4) : 1;
    std::size_t launched = 0;
    auto launchUpTo = [&](std::size_t limit) {
      for (; launched < std::min(limit, slots.size()); ++launched) {
        WorkerSlot& s = slots[launched];
        const std::uint32_t o = failing[launched];
        s.engine = std::make_unique<Engine>(base, spec_, workerOpt, s.frag);
        s.engine->setSharedAnalyses(baseAnalysis_, specAnalysis_);
        Engine* eng = s.engine.get();
        bool* produced = &s.produced;
        s.fut = pool.submit([eng, produced, o, &protect] {
          *produced = eng->rectifyAsWorker(o, protect);
        });
      }
    };

    bool interrupted = false;
    for (std::size_t k = 0; k < failing.size(); ++k) {
      launchUpTo(k + window);
      // A worker failure must not unwind the whole run: classify it into
      // the shared WorkerExitCause taxonomy and redo the output on the
      // canonical netlist (the sequential cascade's view) instead.
      WorkerExitCause cause = WorkerExitCause::kNone;
      std::string reason;
      try {
        slots[k].fut.get();
      } catch (const std::bad_alloc&) {
        cause = WorkerExitCause::kOom;
        reason = "allocation failure escaped the worker";
      } catch (const std::exception& e) {
        cause = WorkerExitCause::kCrash;
        reason = e.what();
      } catch (...) {
        cause = WorkerExitCause::kCrash;
        reason = "non-standard exception escaped the worker";
      }
      bool reported = false;
      if (cause == WorkerExitCause::kNone) {
        reported = slots[k].produced &&
                   commitWorker(failing[k],
                                extractWorkerPatch(*slots[k].engine));
      } else {
        std::fprintf(stderr,
                     "[syseco] in-process worker out=%u failed (%s: %s); "
                     "redoing on the canonical netlist\n",
                     failing[k], workerExitCauseName(cause), reason.c_str());
        slots[k].engine.reset();
        ResourceGuard redoGuard;
        reported = rectifyOutput(failing[k], redoGuard);
        if (reported) {
          OutputReport& rep = diag_.outputs.back();
          rep.workerFailedAttempts = 1;
          rep.workerExitCause = cause;
          extraConflicts_ += rep.conflictsUsed;
          extraBddNodes_ += rep.bddNodesUsed;
        }
      }
      slots[k].engine.reset();  // free the worker's netlist copy promptly
      if (reported) auditBoundary("post-patch-commit");
      if (reported && opt_.checkpointHook) {
        const RunCheckpoint cp{
            diag_.outputs.back(),
            diag_.outputs,
            w,
            tracker(),
            diag_.outputs.size(),
            plannedOutputs_,
            restoredConflicts_ + rootGuard_.conflictsUsed() + extraConflicts_,
            restoredBddNodes_ + rootGuard_.bddNodesUsed() + extraBddNodes_};
        if (!opt_.checkpointHook(cp)) {
          interrupted = true;
          break;
        }
      }
    }
    // An interrupted run leaves speculation in flight; it must finish
    // before the slots (and `failing`) go out of scope. Abandoned results
    // are discarded, but a failure is still classified and logged - a
    // silently swallowed crash here would hide a real defect.
    for (std::size_t k = 0; k < launched; ++k) {
      if (!slots[k].fut.valid()) continue;
      try {
        slots[k].fut.get();
      } catch (const std::bad_alloc&) {
        std::fprintf(stderr,
                     "[syseco] abandoned speculative worker out=%u: %s\n",
                     failing[k], workerExitCauseName(WorkerExitCause::kOom));
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "[syseco] abandoned speculative worker out=%u: %s (%s)\n",
                     failing[k], workerExitCauseName(WorkerExitCause::kCrash),
                     e.what());
      } catch (...) {
        std::fprintf(
            stderr,
            "[syseco] abandoned speculative worker out=%u: %s "
            "(non-standard exception)\n",
            failing[k], workerExitCauseName(WorkerExitCause::kCrash));
      }
    }
    return interrupted;
  }

  /// Applies one worker's speculative result to the canonical netlist,
  /// reproducing the sequential cascade's semantics at commit time:
  /// already-fixed outputs commit nothing, and a patch invalidated by
  /// earlier commits is discarded and redone against the canonical state.
  /// All commit-time solving uses a per-output commit RNG and an unlimited
  /// local guard, so the decision depends only on (seed, output, canonical
  /// netlist) - never on scheduling. The WorkerPatch hand-off shape is
  /// shared with the subprocess isolation mode (eco/isolate.hpp), so both
  /// modes commit through this one path. Returns true when a report was
  /// pushed.
  bool commitWorker(std::uint32_t o, const WorkerPatch& patch) {
    const std::uint32_t op = specOutput(o);
    if (op == kNullId) return false;
    Netlist& w = working();
    const SysecoDiagnostics& frag = patch.frag;
    // Commits before this one may have changed the canonical netlist; if
    // none did, the worker's search *is* the sequential search and its
    // result is adopted verbatim.
    const bool dirty = !tracker().rewires().empty();
    Rng commitRng(opt_.seed ^ (0xc2b2ae3d27d4eb4fULL *
                               (static_cast<std::uint64_t>(o) + 1)));
    ResourceGuard commitGuard;
    Timer commitTimer;

    if (dirty) {
      // Earlier patches may have fixed this output already (the sequential
      // cascade's global favoring); the speculative patch is then discarded
      // in favor of the cheaper no-op, exactly like rectifyOutput's own
      // already-fixed fast path.
      Timer phase;
      PairEncoding pe(w, spec_);
      pe.setResourceGuard(&commitGuard);
      const bool fixed = pe.solveDiffSwept(o, op, opt_.validationBudget,
                                           commitRng) == Solver::Result::Unsat;
      diag_.secondsSampling += phase.seconds();
      if (fixed) {
        OutputReport report;
        report.output = o;
        report.name = w.outputName(o);
        report.conflictsUsed = commitGuard.conflictsUsed();
        report.bddNodesUsed = commitGuard.bddNodesUsed();
        report.seconds = commitTimer.seconds();
        failingSet_.erase(o);
        pushCommittedReport(std::move(report));
        return true;
      }
    }

    if (dirty) {
      // Patches that rewire onto newly-created logic (synthesized gates or
      // cone clones) lose the sequential cascade's cross-output reuse: a
      // later output could have absorbed an earlier output's patch logic -
      // or its search leftovers - instead of instantiating a private copy.
      // Redo those against the canonical netlist, the sequential view.
      // Pure rewires onto pre-existing nets (the common case, and the
      // paper's central claim) transplant exactly and stay parallel.
      std::vector<std::pair<Sink, NetId>> finalBySink;
      for (const PatchTracker::RewireRecord& r : patch.rewires) {
        auto it = std::find_if(
            finalBySink.begin(), finalBySink.end(),
            [&](const auto& p) { return p.first == r.sink; });
        if (it != finalBySink.end())
          it->second = r.newNet;
        else
          finalBySink.emplace_back(r.sink, r.newNet);
      }
      bool addsLogic = false;
      for (const auto& [sink, newNet] : finalBySink)
        addsLogic |= newNet >= commitBaseNets_;
      if (addsLogic) {
        ResourceGuard redoGuard;
        const bool reported = rectifyOutput(o, redoGuard);
        if (reported) {
          OutputReport& rep = diag_.outputs.back();
          rep.conflictsUsed += commitGuard.conflictsUsed();
          rep.bddNodesUsed += commitGuard.bddNodesUsed();
          extraConflicts_ += rep.conflictsUsed;
          extraBddNodes_ += rep.bddNodesUsed;
        }
        return reported;
      }
    }

    // Replay the worker's patch onto the canonical netlist. Worker gate and
    // net ids above the shared base snapshot are pure offsets (addGate is
    // the only creator of gates and nets), so the remap is arithmetic; the
    // SYSECO_CHECK below pins that invariant.
    const std::size_t baseGates = commitBaseGates_;
    const std::size_t baseNets = commitBaseNets_;
    const std::size_t canonGates = w.numGatesTotal();
    const std::size_t canonNets = w.numNetsTotal();
    auto remapNet = [&](NetId n) {
      return n < baseNets ? n : static_cast<NetId>(n - baseNets + canonNets);
    };
    auto remapSink = [&](Sink s) {
      if (!s.isOutput() && s.gate >= baseGates)
        s.gate = static_cast<GateId>(s.gate - baseGates + canonGates);
      return s;
    };

    std::optional<Netlist> backup;
    std::optional<PatchTracker::State> preState;
    if (dirty) {
      backup.emplace(w);
      preState.emplace(tracker().state());
    }

    for (const WorkerPatch::NewGate& gate : patch.gates) {
      std::vector<NetId> fanins;
      fanins.reserve(gate.fanins.size());
      for (NetId f : gate.fanins) fanins.push_back(remapNet(f));
      const NetId out = w.addGate(gate.type, std::move(fanins));
      SYSECO_CHECK(out == remapNet(gate.out));
    }
    std::vector<Sink> replayedPins;
    replayedPins.reserve(patch.rewires.size());
    for (const PatchTracker::RewireRecord& r : patch.rewires) {
      const Sink sink = remapSink(r.sink);
      tracker().rewire(sink, remapNet(r.newNet));
      replayedPins.push_back(sink);
    }

    if (dirty) {
      // The worker proved its patch only against the unpatched base;
      // re-prove every output the replayed patch touches on the canonical
      // netlist before keeping it.
      Timer phase;
      bool ok = true;
      PairEncoding pe(w, spec_);
      pe.setResourceGuard(&commitGuard);
      for (std::uint32_t ao : affectedOutputs(replayedPins, o)) {
        const std::uint32_t aop = specOutput(ao);
        if (aop == kNullId) continue;
        if (pe.solveDiffSwept(ao, aop, opt_.validationBudget, commitRng) !=
            Solver::Result::Unsat) {
          ok = false;
          break;
        }
      }
      diag_.secondsValidation += phase.seconds();
      if (!ok) {
        // The speculative patch conflicts with earlier commits. Roll the
        // canonical netlist back and redo this output sequentially against
        // the current patched state - the sequential cascade's exact view.
        w = std::move(*backup);
        trackerStore_.emplace(w, *preState);
        tracker_ = &*trackerStore_;
        ResourceGuard redoGuard;
        const bool reported = rectifyOutput(o, redoGuard);
        if (reported) {
          OutputReport& rep = diag_.outputs.back();
          rep.conflictsUsed += commitGuard.conflictsUsed();
          rep.bddNodesUsed += commitGuard.bddNodesUsed();
          extraConflicts_ += rep.conflictsUsed;
          extraBddNodes_ += rep.bddNodesUsed;
        }
        return reported;
      }
    }

    // Adopt: merge the worker's account of its search into the run totals
    // and take its report, plus whatever the commit-time checks cost.
    mergeWorkerDiag(frag);
    SYSECO_CHECK(!frag.outputs.empty());
    OutputReport report = frag.outputs.back();
    report.conflictsUsed += commitGuard.conflictsUsed();
    report.bddNodesUsed += commitGuard.bddNodesUsed();
    failingSet_.erase(o);
    pushCommittedReport(std::move(report));
    return true;
  }

  void pushCommittedReport(OutputReport report) {
    extraConflicts_ += report.conflictsUsed;
    extraBddNodes_ += report.bddNodesUsed;
    if (opt_.verbose)
      std::fprintf(stderr, "[syseco] out=%u -> %s (commit, %.2fs)\n",
                   report.output, outputRectStatusName(report.status),
                   report.seconds);
    diag_.outputs.push_back(std::move(report));
  }

  /// Folds a worker fragment's search counters and phase timings into the
  /// run diagnostics. The outputs vector, runLimit and sweep counters are
  /// owned by the canonical engine and never merged.
  void mergeWorkerDiag(const SysecoDiagnostics& f) {
    diag_.outputsRectified += f.outputsRectified;
    diag_.outputsViaRewire += f.outputsViaRewire;
    diag_.outputsViaFallback += f.outputsViaFallback;
    diag_.candidatesValidated += f.candidatesValidated;
    diag_.candidatesRefuted += f.candidatesRefuted;
    diag_.candidatesScreenRejected += f.candidatesScreenRejected;
    diag_.refinementRounds += f.refinementRounds;
    diag_.secondsSampling += f.secondsSampling;
    diag_.secondsSymbolic += f.secondsSymbolic;
    diag_.secondsScreening += f.secondsScreening;
    diag_.secondsValidation += f.secondsValidation;
    diag_.secondsFallback += f.secondsFallback;
  }

  /// Snapshots a worker engine's result into the commit hand-off shape
  /// shared with the subprocess isolation path (eco/isolate.hpp).
  WorkerPatch extractWorkerPatch(const Engine& worker) const {
    WorkerPatch p;
    p.produced = true;
    p.baseGates = commitBaseGates_;
    p.baseNets = commitBaseNets_;
    const Netlist& wn = worker.result_.rectified;
    for (GateId g = static_cast<GateId>(commitBaseGates_);
         g < wn.numGatesTotal(); ++g) {
      const auto& gate = wn.gate(g);
      p.gates.push_back(WorkerPatch::NewGate{gate.type, gate.fanins, gate.out});
    }
    p.rewires = worker.tracker_->rewires();
    p.frag = worker.diag_;
    return p;
  }

  // --- Fault-contained subprocess isolation (--isolate) --------------------

  /// Options a per-output worker runs with, in either execution mode: no
  /// hooks, no nested parallelism, no nested isolation.
  SysecoOptions makeWorkerOptions() const {
    SysecoOptions workerOpt = opt_;
    workerOpt.planHook = nullptr;
    workerOpt.checkpointHook = nullptr;
    workerOpt.resumePlan = nullptr;
    workerOpt.jobs = 1;
    workerOpt.isolate = false;
    workerOpt.workers.clear();
    workerOpt.fleetEventHook = nullptr;
    // Certification and auditing belong to the canonical engine: the commit
    // path re-proves worker results, and the oracle certifies the final
    // netlist once - per-worker passes would only skew timings.
    workerOpt.oracle.enabled = false;
    workerOpt.audit = AuditLevel::kOff;
    workerOpt.reproDir.clear();
    return workerOpt;
  }

  // --- Invariant audits + tri-modal certification (verify/) ---------------

  /// Audits the working netlist at a phase boundary. A clean audit is
  /// recorded in the diagnostics; a failed one aborts the run with a
  /// structured kInternal naming every violated invariant - the corruption
  /// is diagnosed where it first became observable instead of surfacing as
  /// downstream nonsense.
  void auditBoundary(const char* phase) {
    if (opt_.audit == AuditLevel::kOff) return;
    AuditReport report = auditNetlist(working(), opt_.audit, phase);
    diag_.secondsAudit += report.seconds;
    diag_.audits.push_back(report);
    if (!report.ok) throw StatusError(auditFailure(report));
  }

  /// Tri-modal final verification: every label-matched output is certified
  /// through the independent SAT / BDD / simulation routes. A refuted
  /// output (the engine committed it as correct, the oracle disagrees) is
  /// diagnosed - minimized counterexample, optional repro bundle - and
  /// quarantined to a fresh clone of its revised cone (Proposition 1), then
  /// re-certified. The run only succeeds when every pair ends certified.
  void certifyRun() {
    Netlist& w = working();
    // Deliberate-corruption site (SYSECO_FAULT_INJECT=oracle.wrong-patch=
    // wrong-patch): silently complement the last committed output, the
    // honest simulation of a miscompiled patch the search believed in. Runs
    // after sweep/finalize so nothing downstream can undo it, and picks its
    // victim from the committed reports, which are identical across --jobs,
    // --isolate and --resume.
    if (fault::fire("oracle.wrong-patch") == fault::Kind::kWrongPatch &&
        !diag_.outputs.empty()) {
      const std::uint32_t victim = diag_.outputs.back().output;
      const NetId bad = w.addGate(GateType::Not, {w.outputNet(victim)});
      w.rewireOutput(victim, bad);
    }

    OracleOptions oopt = opt_.oracle;
    // All oracle randomness derives from the run seed so the verdict
    // records are bit-identical across execution modes.
    oopt.seed = opt_.seed ^ 0x0bac1e5eedULL;
    // The oracle's BDD route runs the engine-wide tuning: in particular
    // --bdd-reorder=off must restore the legacy identity-order engine
    // everywhere at once.
    oopt.bddReorder = opt_.bddReorder;
    oopt.bddCacheBits = opt_.bddCacheBits;
    oopt.bddReorderThreshold = opt_.bddReorderThreshold;
    CertificationOracle oracle(w, spec_, oopt);
    bool allCertified = true;
    bool anyQuarantine = false;
    diag_.certificates.clear();
    for (std::uint32_t o = 0; o < w.numOutputs(); ++o) {
      const std::uint32_t op = specOutput(o);
      if (op == kNullId) continue;
      OutputCertificate cert = oracle.certify(o, op);
      const bool refuted =
          cert.sat.verdict == RouteVerdict::kNotEquivalent ||
          cert.bdd.verdict == RouteVerdict::kNotEquivalent ||
          cert.sim.verdict == RouteVerdict::kNotEquivalent;
      if (refuted) {
        OracleDisagreement d;
        d.output = o;
        d.name = w.outputName(o);
        d.detail = std::string("sat=") + routeVerdictName(cert.sat.verdict) +
                   " bdd=" + routeVerdictName(cert.bdd.verdict) +
                   " sim=" + routeVerdictName(cert.sim.verdict);
        d.cex = cert.cex;
        if (!opt_.reproDir.empty()) d.bundleDir = writeDisagreementBundle(d, cert);
        std::fprintf(stderr,
                     "[syseco] ORACLE DISAGREEMENT out=%u (%s): %s; "
                     "quarantining to the cone-clone fallback%s%s\n",
                     o, d.name.c_str(), d.detail.c_str(),
                     d.bundleDir.empty() ? "" : "; repro bundle: ",
                     d.bundleDir.c_str());
        // Never ship a refuted output: replace whatever drives it with a
        // fresh clone of its revised cone and prove *that*.
        tracker().rewire(Sink{kNullId, o},
                         tracker().cloneSpecCone(spec_, spec_.outputNet(op)));
        markQuarantined(o);
        anyQuarantine = true;
        if (opt_.audit == AuditLevel::kParanoid)
          auditBoundary("post-quarantine");
        cert = oracle.certify(o, op);
        diag_.oracleDisagreements.push_back(std::move(d));
      }
      if (!cert.certified) allCertified = false;
      diag_.certificates.push_back(std::move(cert));
    }
    if (anyQuarantine) result_.stats = tracker().finalize();
    result_.success = allCertified;
  }

  /// Flags output `o`'s report as a quarantined fallback: status kFallback
  /// with limit kInternal, the pair that drives the degraded exit code. An
  /// output the engine never reported on (a corruption caught on a healthy
  /// output) gets a fresh report.
  void markQuarantined(std::uint32_t o) {
    for (OutputReport& r : diag_.outputs) {
      if (r.output != o) continue;
      r.status = OutputRectStatus::kFallback;
      r.limit = StatusCode::kInternal;
      return;
    }
    OutputReport report;
    report.output = o;
    report.name = working().outputName(o);
    report.status = OutputRectStatus::kFallback;
    report.limit = StatusCode::kInternal;
    diag_.outputs.push_back(std::move(report));
  }

  /// Packages a disagreement into an atomic repro bundle: the exact
  /// netlists, the recorded patch, the seed, the minimized counterexample
  /// and the build that produced it. Returns the published directory, or
  /// "" when writing failed (the quarantine still proceeds - evidence is
  /// best-effort, shipping a wrong patch is not).
  std::string writeDisagreementBundle(const OracleDisagreement& d,
                                      const OutputCertificate& cert) {
    auto esc = [](const std::string& s) {
      std::string out;
      for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
      }
      return out;
    };
    std::string cexTxt;
    if (d.cex.empty()) {
      cexTxt = "(counterexample unavailable)\n";
    } else {
      const Netlist& w = working();
      for (std::uint32_t i = 0; i < w.numInputs(); ++i)
        cexTxt += w.inputName(i) + " " + (d.cex[i] ? "1" : "0") + "\n";
    }
    std::string patchTxt;
    for (const PatchTracker::RewireRecord& r : tracker().rewires()) {
      patchTxt += (r.sink.isOutput() ? "output " + std::to_string(r.sink.port)
                                     : "gate " + std::to_string(r.sink.gate) +
                                           " pin " +
                                           std::to_string(r.sink.port)) +
                  ": net " + std::to_string(r.oldNet) + " -> net " +
                  std::to_string(r.newNet) + "\n";
    }
    std::string meta = "{\n";
    meta += "  \"schema_version\": 1,\n";
    meta += "  \"output\": " + std::to_string(d.output) + ",\n";
    meta += "  \"output_name\": \"" + esc(d.name) + "\",\n";
    meta += "  \"seed\": " + std::to_string(opt_.seed) + ",\n";
    meta += "  \"verdicts\": {\n";
    meta += std::string("    \"sat\": \"") +
            routeVerdictName(cert.sat.verdict) + "\",\n";
    meta += std::string("    \"bdd\": \"") +
            routeVerdictName(cert.bdd.verdict) + "\",\n";
    meta += std::string("    \"sim\": \"") +
            routeVerdictName(cert.sim.verdict) + "\"\n";
    meta += "  },\n";
    meta += "  \"cex_reproduced\": ";
    meta += cert.cexReproduced ? "true" : "false";
    meta += ",\n";
    meta += "  \"cex_deviations\": " + std::to_string(cert.cexDeviations) +
            ",\n";
    meta += "  \"build\": " + buildInfoJson("  ") + "\n";
    meta += "}\n";
    const std::vector<ReproFile> files{
        {"impl_patched.raw", working().dumpRawString()},
        {"spec.raw", spec_.dumpRawString()},
        {"patch.txt", patchTxt},
        {"cex.txt", cexTxt},
        {"meta.json", meta},
    };
    Result<std::string> bundle = writeReproBundle(
        opt_.reproDir, "disagreement-o" + std::to_string(d.output), files);
    if (!bundle.isOk()) {
      std::fprintf(stderr, "[syseco] repro bundle write failed: %s\n",
                   bundle.status().toString().c_str());
      return "";
    }
    return bundle.take();
  }

  /// Deterministic capped exponential backoff; see retryBackoffSeconds
  /// (isolate.hpp) for the transport-independence contract.
  double backoffSeconds(std::uint32_t o, int failedAttempts) const {
    return retryBackoffSeconds(opt_, o, failedAttempts);
  }

  /// The resource-limit code a quarantined output reports: it makes
  /// resourceDegraded() true (the CLI's degraded exit code) and names the
  /// closest-matching resource family for the failure cause.
  static StatusCode quarantineLimit(WorkerExitCause cause) {
    switch (cause) {
      case WorkerExitCause::kCpuTimeout:
      case WorkerExitCause::kWallTimeout:
      case WorkerExitCause::kLeaseExpired:
        return StatusCode::kDeadlineExceeded;
      case WorkerExitCause::kOom:
        return StatusCode::kBudgetExhausted;
      default:
        return StatusCode::kInternal;
    }
  }

  /// Quarantine adoption: after isolateMaxAttempts contained failures the
  /// output goes straight to the guaranteed cone-clone fallback against the
  /// canonical netlist (Proposition 1) - deterministically, with the same
  /// per-output re-derivation as rectifyOutput - and reports kFallback with
  /// a non-ok limit so the run surfaces as degraded.
  bool commitQuarantined(std::uint32_t o, int attempts, WorkerExitCause cause) {
    const std::uint32_t op = specOutput(o);
    if (op == kNullId) return false;
    rng_.reseed(opt_.seed ^ (0x9e3779b97f4a7c15ULL *
                             (static_cast<std::uint64_t>(o) + 1)));
    cloner_.reset();
    Timer timer;
    fallback(o, op);
    ++diag_.outputsRectified;
    failingSet_.erase(o);
    OutputReport report;
    report.output = o;
    report.name = working().outputName(o);
    report.status = OutputRectStatus::kFallback;
    report.limit = quarantineLimit(cause);
    report.seconds = timer.seconds();
    report.workerFailedAttempts = attempts;
    report.workerExitCause = cause;
    pushCommittedReport(std::move(report));
    return true;
  }

  /// Runs inside the forked worker: decode the request, honor worker-side
  /// fault injection, rectify the output against the (COW-inherited) base
  /// snapshot and ship the WorkerPatch back. The return value becomes the
  /// child's exit code via the forkWorker wrapper.
  int isolatedWorkerBody(int requestFd, int responseFd, const Netlist& base,
                         const std::vector<std::uint32_t>& protect,
                         const SysecoOptions& workerOpt) {
    Result<std::string> raw = subprocess::readAll(requestFd);
    if (!raw.isOk()) return subprocess::kChildExitBadRequest;
    Result<ipc::Frame> frame = ipc::decodeFrame(raw.value());
    if (!frame.isOk() || frame.value().type != ipc::kTypeTaskRequest)
      return subprocess::kChildExitBadRequest;
    Result<IsolateTaskRequest> req = decodeTaskRequest(frame.value().payload);
    if (!req.isOk() || req.value().output >= base.numOutputs())
      return subprocess::kChildExitBadRequest;
    const std::uint32_t o = req.value().output;

    // Worker-side fault sites: "isolate.worker" hits every task; the
    // per-output variant pins the blast radius to one output in tests and
    // CI. (kCrash fires centrally inside fault::fire - std::_Exit(137).)
    const std::string persite = "isolate.worker.o" + std::to_string(o);
    const char* sites[2] = {"isolate.worker", persite.c_str()};
    for (const char* site : sites) {
      const auto kind = fault::fire(site);
      if (!kind) continue;
      switch (*kind) {
        case fault::Kind::kOom:
          // Escapes the whole body; forkWorker maps it to kChildExitOom.
          throw std::bad_alloc{};
        case fault::Kind::kHang:
          // A worker stuck in a loop that shrugs off SIGTERM: the
          // supervisor's wall deadline must escalate to SIGKILL.
          std::signal(SIGTERM, SIG_IGN);
          for (;;) subprocess::pollReadable({}, 1000);
        case fault::Kind::kGarbageIpc: {
          std::string garbled =
              ipc::encodeFrame(ipc::kTypeWorkerResult, "{\"produced\":true}");
          garbled[garbled.size() / 2] =
              static_cast<char>(garbled[garbled.size() / 2] ^ 0x40);
          (void)subprocess::writeAll(responseFd, garbled);
          return subprocess::kChildExitOk;
        }
        default:
          // The engine-internal kinds (budget/deadline/bdd/alloc) have no
          // meaning at this site; report a cleanly contained injection.
          return subprocess::kChildExitFaultInjected;
      }
    }

    SysecoDiagnostics frag;
    Engine eng(base, spec_, workerOpt, frag);
    eng.setSharedAnalyses(baseAnalysis_, specAnalysis_);
    const bool produced = eng.rectifyAsWorker(o, protect);
    WorkerPatch patch;
    if (produced) {
      patch = extractWorkerPatch(eng);
    } else {
      patch.baseGates = commitBaseGates_;
      patch.baseNets = commitBaseNets_;
    }
    patch.produced = produced;
    const std::string resp =
        ipc::encodeFrame(ipc::kTypeWorkerResult, encodeWorkerPatch(patch));
    if (!subprocess::writeAll(responseFd, resp).isOk())
      return subprocess::kChildExitUncaught;
    return subprocess::kChildExitOk;
  }

  /// The isolation supervisor: per-output tasks run in forked, rlimit-
  /// sandboxed worker subprocesses. Outcomes are classified into the
  /// WorkerExitCause taxonomy; transient failures retry with deterministic
  /// capped backoff; an output that exhausts isolateMaxAttempts is
  /// quarantined to the cone-clone fallback. Successful results commit
  /// strictly in plan order through the exact code path the in-process
  /// speculative mode uses, so a clean isolated run is bit-identical to a
  /// --jobs run. Single-threaded on the parent side by design: the children
  /// provide the parallelism, and a thread-free parent keeps fork safe.
  /// Returns true when a checkpoint hook interrupted the run.
  bool runIsolated(const std::vector<std::uint32_t>& failing,
                   const ResumePlan* plan) {
    Netlist& w = working();
    const Netlist base = plan ? plan->base : w;
    commitBaseGates_ = base.numGatesTotal();
    commitBaseNets_ = base.numNetsTotal();
    const SysecoOptions workerOpt = makeWorkerOptions();
    const std::vector<std::uint32_t>& protect = plan ? plan->order : failing;

    enum class SlotState : std::uint8_t { kPending, kRunning, kDone };
    struct IsoSlot {
      SlotState st = SlotState::kPending;
      int attemptsFailed = 0;
      WorkerExitCause lastCause = WorkerExitCause::kNone;
      bool quarantined = false;
      subprocess::Child child;
      std::string buf;           ///< response bytes accumulated so far
      double startedAt = 0.0;    ///< supervisor clock at launch
      double notBefore = 0.0;    ///< backoff: earliest relaunch time
      std::optional<WorkerPatch> patch;
    };
    std::vector<IsoSlot> slots(failing.size());
    Timer clock;
    const std::size_t window = std::max<std::size_t>(2 * opt_.jobs, 4);
    std::size_t nextCommit = 0;

    auto drainToEof = [](IsoSlot& s) {
      // The pipe can still hold the tail of a response after the child is
      // reaped; drain to EOF before judging the bytes.
      while (true) {
        const std::size_t before = s.buf.size();
        Result<bool> more =
            subprocess::drainAvailable(s.child.responseFd, &s.buf);
        if (!more.isOk() || !more.value() || s.buf.size() == before) break;
      }
    };

    auto failAttempt = [&](std::size_t k, WorkerExitCause cause,
                           const std::string& reason) {
      IsoSlot& s = slots[k];
      ++s.attemptsFailed;
      s.lastCause = cause;
      s.buf.clear();
      std::fprintf(stderr,
                   "[syseco] isolated worker out=%u attempt %d/%d failed: "
                   "%s%s%s%s\n",
                   failing[k], s.attemptsFailed, opt_.isolateMaxAttempts,
                   workerExitCauseName(cause), reason.empty() ? "" : " (",
                   reason.c_str(), reason.empty() ? "" : ")");
      if (s.attemptsFailed >= opt_.isolateMaxAttempts) {
        s.quarantined = true;
        s.st = SlotState::kDone;
        std::fprintf(stderr,
                     "[syseco] out=%u quarantined after %d attempts; "
                     "degrading to the cone-clone fallback\n",
                     failing[k], s.attemptsFailed);
      } else {
        s.st = SlotState::kPending;
        s.notBefore =
            clock.seconds() + backoffSeconds(failing[k], s.attemptsFailed);
      }
    };

    auto settleReaped = [&](std::size_t k,
                            const subprocess::WaitOutcome& wo) {
      IsoSlot& s = slots[k];
      drainToEof(s);
      subprocess::closeChildFds(s.child);
      s.child = subprocess::Child{};
      if (wo.kind == subprocess::WaitKind::kSignaled) {
        failAttempt(k,
                    wo.signal == SIGXCPU ? WorkerExitCause::kCpuTimeout
                                         : WorkerExitCause::kCrash,
                    "signal " + std::to_string(wo.signal));
        return;
      }
      if (wo.exitCode == subprocess::kChildExitOk) {
        Result<ipc::Frame> frame = ipc::decodeFrame(s.buf);
        if (frame.isOk() && frame.value().type == ipc::kTypeWorkerResult) {
          Result<WorkerPatch> decoded =
              decodeWorkerPatch(frame.value().payload, base);
          if (decoded.isOk()) {
            s.patch.emplace(decoded.take());
            s.buf.clear();
            s.st = SlotState::kDone;
            return;
          }
          failAttempt(k, WorkerExitCause::kGarbageIpc,
                      decoded.status().message());
          return;
        }
        failAttempt(k, WorkerExitCause::kGarbageIpc,
                    frame.isOk() ? "unexpected frame type"
                                 : frame.status().message());
        return;
      }
      switch (wo.exitCode) {
        case subprocess::kChildExitOom:
          failAttempt(k, WorkerExitCause::kOom, "");
          return;
        case subprocess::kChildExitFaultInjected:
          failAttempt(k, WorkerExitCause::kFaultInjected, "");
          return;
        case subprocess::kChildExitBadRequest:
          failAttempt(k, WorkerExitCause::kGarbageIpc,
                      "worker rejected the task request");
          return;
        default:
          failAttempt(k, WorkerExitCause::kCrash,
                      "exit code " + std::to_string(wo.exitCode));
          return;
      }
    };

    auto launchSlot = [&](std::size_t k) {
      IsoSlot& s = slots[k];
      const std::uint32_t o = failing[k];
      subprocess::Limits limits;
      limits.memoryBytes = opt_.isolateMemoryBytes;
      limits.cpuSeconds = opt_.isolateCpuSeconds;
      Result<subprocess::Child> forked = subprocess::forkWorker(
          limits, [&](int requestFd, int responseFd) {
            return isolatedWorkerBody(requestFd, responseFd, base, protect,
                                      workerOpt);
          });
      if (!forked.isOk()) {
        failAttempt(k, WorkerExitCause::kCrash, forked.status().message());
        return;
      }
      s.child = forked.value();
      s.buf.clear();
      s.startedAt = clock.seconds();
      s.st = SlotState::kRunning;
      const IsolateTaskRequest req{o, s.attemptsFailed + 1};
      const std::string bytes =
          ipc::encodeFrame(ipc::kTypeTaskRequest, encodeTaskRequest(req));
      // A write failure means the child already died; the reap probe in the
      // service phase classifies it.
      (void)subprocess::writeAll(s.child.requestFd, bytes);
      subprocess::closeRequestFd(s.child);  // EOF: the request is complete
    };

    auto killAll = [&] {
      for (IsoSlot& s : slots) {
        if (s.st == SlotState::kRunning && s.child.valid()) {
          subprocess::terminateChild(s.child.pid, 0.2);
          subprocess::closeChildFds(s.child);
          s.child = subprocess::Child{};
        }
      }
    };

    bool interrupted = false;
    while (nextCommit < slots.size() && !interrupted) {
      // Launch phase: fill free worker seats with due pending slots from
      // the commit window.
      const double now = clock.seconds();
      std::size_t running = 0;
      for (const IsoSlot& s : slots)
        if (s.st == SlotState::kRunning) ++running;
      const std::size_t horizon = std::min(slots.size(), nextCommit + window);
      for (std::size_t k = nextCommit; k < horizon && running < opt_.jobs;
           ++k) {
        if (slots[k].st != SlotState::kPending || slots[k].notBefore > now)
          continue;
        launchSlot(k);
        if (slots[k].st == SlotState::kRunning) ++running;
      }

      // Wait for a worker event (or a backoff / wall-deadline tick).
      std::vector<int> fds;
      for (const IsoSlot& s : slots)
        if (s.st == SlotState::kRunning && s.child.responseFd >= 0)
          fds.push_back(s.child.responseFd);
      subprocess::pollReadable(fds, 20);

      // Service phase: drain pipes, reap exits, enforce wall deadlines.
      for (std::size_t k = 0; k < slots.size(); ++k) {
        IsoSlot& s = slots[k];
        if (s.st != SlotState::kRunning || !s.child.valid()) continue;
        (void)subprocess::drainAvailable(s.child.responseFd, &s.buf);
        if (const auto wo = subprocess::tryReap(s.child.pid)) {
          settleReaped(k, *wo);
          continue;
        }
        if (opt_.isolateWallSeconds > 0.0 &&
            clock.seconds() - s.startedAt > opt_.isolateWallSeconds) {
          const subprocess::WaitOutcome wo =
              subprocess::terminateChild(s.child.pid, 0.5);
          subprocess::closeChildFds(s.child);
          s.child = subprocess::Child{};
          failAttempt(k, WorkerExitCause::kWallTimeout,
                      wo.killEscalated ? "SIGTERM ignored; SIGKILL delivered"
                                       : "");
        }
      }

      // Commit phase: adopt finished slots strictly in plan order through
      // the same path the in-process speculative mode uses.
      while (nextCommit < slots.size() &&
             slots[nextCommit].st == SlotState::kDone) {
        IsoSlot& s = slots[nextCommit];
        const std::uint32_t o = failing[nextCommit];
        bool reported = false;
        if (s.quarantined) {
          reported = commitQuarantined(o, s.attemptsFailed, s.lastCause);
        } else if (s.patch && s.patch->produced) {
          reported = commitWorker(o, *s.patch);
          if (reported && s.attemptsFailed > 0) {
            // The commit path reproduces the clean report; the supervisor
            // grafts on what the retries cost.
            diag_.outputs.back().workerFailedAttempts = s.attemptsFailed;
            diag_.outputs.back().workerExitCause = s.lastCause;
          }
        }
        s.patch.reset();
        ++nextCommit;
        // The committed patch crossed the IPC decode boundary before it
        // touched the canonical netlist; audit what it left behind.
        if (reported) auditBoundary("post-isolate-decode");
        if (reported && opt_.checkpointHook) {
          const RunCheckpoint cp{
              diag_.outputs.back(),
              diag_.outputs,
              w,
              tracker(),
              diag_.outputs.size(),
              plannedOutputs_,
              restoredConflicts_ + rootGuard_.conflictsUsed() +
                  extraConflicts_,
              restoredBddNodes_ + rootGuard_.bddNodesUsed() + extraBddNodes_};
          if (!opt_.checkpointHook(cp)) {
            interrupted = true;
            break;
          }
        }
      }
    }
    killAll();
    return interrupted;
  }

  // --- Distributed fleet supervision (--workers host:port,...) ------------

 public:
  /// The pure per-output fleet task: the exact computation a forked isolate
  /// worker runs, packaged as a static function so both the --serve-worker
  /// agent process and the supervisor's degraded in-process path compute
  /// byte-identical WorkerPatch results. Escaping exceptions are contained
  /// into a non-ok Status - an agent must report a task failure, never die.
  static Result<WorkerPatch> computeTask(
      const Netlist& base, const Netlist& spec, const SysecoOptions& workerOpt,
      std::uint32_t output, const std::vector<std::uint32_t>& protect,
      const NetlistAnalysis* baseAnalysis, const NetlistAnalysis* specAnalysis) {
    if (output >= base.numOutputs())
      return Status::invalidInput("fleet task output out of range");
    try {
      SysecoDiagnostics frag;
      Engine eng(base, spec, workerOpt, frag);
      eng.setSharedAnalyses(baseAnalysis, specAnalysis);
      const bool produced = eng.rectifyAsWorker(output, protect);
      WorkerPatch p;
      p.produced = produced;
      p.baseGates = base.numGatesTotal();
      p.baseNets = base.numNetsTotal();
      if (produced) {
        const Netlist& wn = eng.result_.rectified;
        for (GateId g = static_cast<GateId>(p.baseGates);
             g < wn.numGatesTotal(); ++g) {
          const auto& gate = wn.gate(g);
          p.gates.push_back(
              WorkerPatch::NewGate{gate.type, gate.fanins, gate.out});
        }
        p.rewires = eng.tracker_->rewires();
        p.frag = eng.diag_;
      }
      return p;
    } catch (const std::bad_alloc&) {
      return Status::budgetExhausted("fleet task allocation failure");
    } catch (const StatusError& e) {
      return e.status();
    } catch (const std::exception& e) {
      return Status::internal(std::string("fleet task threw: ") + e.what());
    }
  }

 private:
  /// Emits one fleet lifecycle event to the journaling hook and, under
  /// --verbose, to stderr. Events are observability only - they carry
  /// timing-dependent scheduling history and never feed the verdict
  /// records, which is what keeps fleet runs bit-comparable to --jobs.
  void fleetEvent(const std::string& kind, const std::string& worker,
                  std::uint32_t output, int attempt,
                  const std::string& detail) {
    if (opt_.fleetEventHook) {
      FleetEvent ev;
      ev.kind = kind;
      ev.worker = worker;
      ev.output = output;
      ev.attempt = attempt;
      ev.detail = detail;
      opt_.fleetEventHook(ev);
    }
    if (opt_.verbose)
      std::fprintf(stderr, "[syseco] fleet %s worker=%s out=%u attempt=%d%s%s\n",
                   kind.c_str(), worker.c_str(), output, attempt,
                   detail.empty() ? "" : ": ", detail.c_str());
  }

  /// The fleet supervisor: per-output tasks are sharded over persistent TCP
  /// connections to --serve-worker agents. Each assignment carries a fresh
  /// epoch and a lease; heartbeats renew the lease, and a task whose agent
  /// disconnects, babbles or overruns its lease is reclaimed and retried
  /// through the same capped-backoff / quarantine machinery as --isolate.
  /// Duplicate results from reassigned-then-returned tasks are discarded by
  /// epoch. When fewer than fleetMinWorkers agents remain usable the run
  /// degrades to computing the identical pure task in-process (sequentially;
  /// slower, never wrong). Commits happen strictly in plan order through
  /// the shared commitWorker path, so verdict records are bit-identical to
  /// a local --jobs run. Returns true when a checkpoint hook interrupted.
  bool runFleet(const std::vector<std::uint32_t>& failing,
                const ResumePlan* plan) {
    Netlist& w = working();
    const Netlist base = plan ? plan->base : w;
    commitBaseGates_ = base.numGatesTotal();
    commitBaseNets_ = base.numNetsTotal();
    const SysecoOptions workerOpt = makeWorkerOptions();
    const std::vector<std::uint32_t>& protect = plan ? plan->order : failing;

    // The one-time case upload: everything a task is a pure function of,
    // minus the output index. Content-addressed by crc32 so each agent
    // fetches it at most once per connection lifetime.
    const std::string casePayload =
        encodeFleetCase(base, spec_, workerOpt, protect);
    const std::uint32_t caseCrc = crc32(casePayload);

    enum class TaskState : std::uint8_t { kPending, kRunning, kDone };
    struct FleetTask {
      TaskState st = TaskState::kPending;
      int attemptsFailed = 0;
      WorkerExitCause lastCause = WorkerExitCause::kNone;
      bool quarantined = false;
      std::uint64_t epoch = 0;  ///< current assignment; stale frames differ
      int peer = -1;            ///< peer index while kRunning
      double deadline = 0.0;    ///< lease expiry on the supervisor clock
      double notBefore = 0.0;   ///< backoff: earliest reassignment time
      std::optional<WorkerPatch> patch;
    };
    enum class PeerState : std::uint8_t { kIdle, kBusy, kLagging, kDead };
    struct FleetPeer {
      std::string spec;  ///< "host:port" as the user wrote it
      std::string host;
      std::uint16_t port = 0;
      int fd = -1;
      std::string rx;             ///< framed receive stream
      int strikes = 0;            ///< consecutive transport failures
      int task = -1;              ///< task index while kBusy / kLagging
      std::uint64_t staleEpoch = 0;  ///< lease-expired assignment, if any
      PeerState st = PeerState::kIdle;
    };
    constexpr int kPeerMaxStrikes = 2;

    std::vector<FleetTask> tasks(failing.size());
    std::vector<FleetPeer> peers;
    for (const std::string& spec : opt_.workers) {
      Result<std::pair<std::string, std::uint16_t>> hp =
          net::parseHostPort(spec);
      if (!hp.isOk()) continue;  // validateSysecoOptions rejects these
      FleetPeer p;
      p.spec = spec;
      p.host = hp.value().first;
      p.port = hp.value().second;
      peers.push_back(std::move(p));
    }

    Timer clock;
    const std::size_t window = std::max<std::size_t>(2 * peers.size(), 4);
    std::size_t nextCommit = 0;
    std::uint64_t epochCounter = 0;
    bool interrupted = false;
    bool degraded = false;

    auto failAttempt = [&](std::size_t k, WorkerExitCause cause,
                           const std::string& worker,
                           const std::string& reason) {
      FleetTask& t = tasks[k];
      ++t.attemptsFailed;
      t.lastCause = cause;
      t.peer = -1;
      fleetEvent(workerExitCauseName(cause), worker, failing[k],
                 t.attemptsFailed, reason);
      std::fprintf(stderr,
                   "[syseco] fleet task out=%u attempt %d/%d failed: %s%s%s%s\n",
                   failing[k], t.attemptsFailed, opt_.isolateMaxAttempts,
                   workerExitCauseName(cause), reason.empty() ? "" : " (",
                   reason.c_str(), reason.empty() ? "" : ")");
      if (t.attemptsFailed >= opt_.isolateMaxAttempts) {
        t.quarantined = true;
        t.st = TaskState::kDone;
        std::fprintf(stderr,
                     "[syseco] out=%u quarantined after %d attempts; "
                     "degrading to the cone-clone fallback\n",
                     failing[k], t.attemptsFailed);
      } else {
        t.st = TaskState::kPending;
        t.notBefore =
            clock.seconds() + backoffSeconds(failing[k], t.attemptsFailed);
      }
    };

    auto failPeer = [&](std::size_t pi, const std::string& why) {
      FleetPeer& p = peers[pi];
      net::closeSocket(p.fd);
      p.rx.clear();
      p.task = -1;
      p.staleEpoch = 0;
      ++p.strikes;
      if (p.strikes >= kPeerMaxStrikes) {
        p.st = PeerState::kDead;
        fleetEvent("worker-dead", p.spec, 0, 0, why);
        std::fprintf(stderr, "[syseco] fleet worker %s marked dead: %s\n",
                     p.spec.c_str(), why.c_str());
      } else {
        p.st = PeerState::kIdle;
      }
    };

    // A stale frame: the agent finished an assignment the supervisor
    // already reclaimed. The duplicate is discarded by epoch and the agent
    // rejoins the pool - it is alive and computed honestly, just too late.
    auto settleStale = [&](std::size_t pi, std::uint64_t epoch,
                           const char* what) {
      FleetPeer& p = peers[pi];
      fleetEvent("stale-epoch", p.spec,
                 p.task >= 0 ? failing[static_cast<std::size_t>(p.task)] : 0, 0,
                 std::string("discarded duplicate ") + what + " for epoch " +
                     std::to_string(epoch));
      p.task = -1;
      p.staleEpoch = 0;
      p.strikes = 0;
      if (p.st == PeerState::kLagging) p.st = PeerState::kIdle;
    };

    // True when `epoch` names the live assignment of this peer's task.
    auto isCurrent = [&](const FleetPeer& p, std::uint64_t epoch) {
      return p.task >= 0 &&
             tasks[static_cast<std::size_t>(p.task)].st == TaskState::kRunning &&
             tasks[static_cast<std::size_t>(p.task)].epoch == epoch;
    };

    auto failGarbage = [&](std::size_t pi, const std::string& why) {
      FleetPeer& p = peers[pi];
      if (p.task >= 0 &&
          tasks[static_cast<std::size_t>(p.task)].st == TaskState::kRunning)
        failAttempt(static_cast<std::size_t>(p.task),
                    WorkerExitCause::kGarbageIpc, p.spec, why);
      else
        fleetEvent(workerExitCauseName(WorkerExitCause::kGarbageIpc), p.spec,
                   0, 0, why);
      failPeer(pi, why);
    };

    auto handleFrame = [&](std::size_t pi, const ipc::Frame& f) {
      FleetPeer& p = peers[pi];
      switch (f.type) {
        case ipc::kTypeFleetNeedCase: {
          Result<std::uint32_t> crc = decodeFleetNeedCase(f.payload);
          if (!crc.isOk() || crc.value() != caseCrc) {
            failGarbage(pi, "bad need-case frame");
            return;
          }
          fleetEvent("case-upload", p.spec, 0, 0,
                     std::to_string(casePayload.size()) + " bytes");
          if (!net::sendFrame(p.fd, ipc::kTypeFleetCase, casePayload).isOk()) {
            if (p.task >= 0 &&
                tasks[static_cast<std::size_t>(p.task)].st ==
                    TaskState::kRunning)
              failAttempt(static_cast<std::size_t>(p.task),
                          WorkerExitCause::kConnReset, p.spec,
                          "case upload failed");
            failPeer(pi, "case upload failed");
          }
          return;
        }
        case ipc::kTypeFleetHeartbeat: {
          Result<std::uint64_t> ep = decodeFleetHeartbeat(f.payload);
          if (!ep.isOk()) {
            failGarbage(pi, "bad heartbeat frame");
            return;
          }
          // Heartbeats for reclaimed assignments are ignored: the peer is
          // kLagging and stays out of the pool until its stale result lands.
          if (isCurrent(p, ep.value()))
            tasks[static_cast<std::size_t>(p.task)].deadline =
                clock.seconds() + opt_.fleetLeaseSeconds;
          return;
        }
        case ipc::kTypeFleetResult: {
          Result<std::uint64_t> ep = peekFleetEpoch(f.payload);
          if (!ep.isOk()) {
            failGarbage(pi, "bad result envelope");
            return;
          }
          if (!isCurrent(p, ep.value())) {
            settleStale(pi, ep.value(), "result");
            return;
          }
          const std::size_t k = static_cast<std::size_t>(p.task);
          Result<WorkerPatch> decoded = decodeWorkerPatch(f.payload, base);
          if (!decoded.isOk()) {
            failAttempt(k, WorkerExitCause::kGarbageIpc, p.spec,
                        decoded.status().message());
            failPeer(pi, "undecodable result: " + decoded.status().message());
            return;
          }
          tasks[k].patch.emplace(decoded.take());
          tasks[k].st = TaskState::kDone;
          tasks[k].peer = -1;
          p.task = -1;
          p.strikes = 0;
          p.st = PeerState::kIdle;
          return;
        }
        case ipc::kTypeFleetFailure: {
          Result<FleetFailure> fail = decodeFleetFailure(f.payload);
          if (!fail.isOk()) {
            failGarbage(pi, "bad failure frame");
            return;
          }
          if (!isCurrent(p, fail.value().epoch)) {
            settleStale(pi, fail.value().epoch, "failure");
            return;
          }
          const std::optional<WorkerExitCause> cause =
              workerExitCauseFromName(fail.value().cause);
          failAttempt(static_cast<std::size_t>(p.task),
                      cause.value_or(WorkerExitCause::kCrash), p.spec,
                      fail.value().detail);
          // A contained failure report proves the agent itself is healthy.
          p.task = -1;
          p.strikes = 0;
          p.st = PeerState::kIdle;
          return;
        }
        default:
          failGarbage(pi, "unexpected fleet frame type " +
                              std::to_string(f.type));
          return;
      }
    };

    auto servicePeer = [&](std::size_t pi) {
      FleetPeer& p = peers[pi];
      if (p.fd < 0) return;
      const ioretry::DrainOutcome dr =
          ioretry::drainNonblockingRaw(p.fd, &p.rx);
      const bool eof = dr.state == ioretry::DrainState::kEof;
      const int derr =
          dr.state == ioretry::DrainState::kError ? dr.err : 0;
      while (p.fd >= 0) {
        net::RecvOutcome out = net::takeFrame(&p.rx, eof, derr);
        if (out.status == net::RecvStatus::kFrame) {
          handleFrame(pi, out.frame);
          continue;
        }
        if (out.status == net::RecvStatus::kTimeout) break;  // stream intact
        WorkerExitCause cause = WorkerExitCause::kConnReset;
        if (out.status == net::RecvStatus::kTruncated)
          cause = WorkerExitCause::kFrameTruncated;
        else if (out.status == net::RecvStatus::kGarbage)
          cause = WorkerExitCause::kGarbageIpc;
        const std::string why =
            out.detail.empty() ? workerExitCauseName(cause) : out.detail;
        if (p.task >= 0 &&
            tasks[static_cast<std::size_t>(p.task)].st == TaskState::kRunning)
          failAttempt(static_cast<std::size_t>(p.task), cause, p.spec, why);
        else
          fleetEvent(workerExitCauseName(cause), p.spec, 0, 0, why);
        failPeer(pi, why);
        break;
      }
    };

    auto assignTask = [&](std::size_t k, std::size_t pi) {
      FleetPeer& p = peers[pi];
      FleetTask& t = tasks[k];
      if (p.fd < 0) {
        Result<int> fd =
            net::connectTo(p.host, p.port, opt_.fleetConnectTimeoutMs);
        if (!fd.isOk()) {
          // The task never reached an agent, so no retry attempt is
          // consumed: the refusal is the peer's failure, and enough of
          // those kill the peer (and eventually degrade the fleet).
          fleetEvent(workerExitCauseName(WorkerExitCause::kConnRefused),
                     p.spec, failing[k], t.attemptsFailed,
                     fd.status().message());
          failPeer(pi, fd.status().message());
          return;
        }
        p.fd = fd.take();
        p.rx.clear();
      }
      FleetTaskRequest req;
      req.output = failing[k];
      req.attempt = t.attemptsFailed + 1;
      req.epoch = ++epochCounter;
      req.leaseSeconds = opt_.fleetLeaseSeconds;
      req.caseCrc = caseCrc;
      if (!net::sendFrame(p.fd, ipc::kTypeFleetTask,
                          encodeFleetTaskRequest(req))
               .isOk()) {
        failAttempt(k, WorkerExitCause::kConnReset, p.spec,
                    "task request send failed");
        failPeer(pi, "task request send failed");
        return;
      }
      t.st = TaskState::kRunning;
      t.epoch = req.epoch;
      t.peer = static_cast<int>(pi);
      t.deadline = clock.seconds() + opt_.fleetLeaseSeconds;
      p.st = PeerState::kBusy;
      p.task = static_cast<int>(k);
    };

    while (nextCommit < tasks.size() && !interrupted) {
      // Fleet-health phase: kLagging and kDead peers cannot take work, so
      // only kIdle/kBusy count. Dropping below the threshold permanently
      // degrades the run to in-process execution of the identical pure
      // tasks - slower, never wrong, never aborted.
      if (!degraded) {
        std::size_t healthy = 0;
        for (const FleetPeer& p : peers)
          if (p.st == PeerState::kIdle || p.st == PeerState::kBusy) ++healthy;
        if (healthy < static_cast<std::size_t>(opt_.fleetMinWorkers)) {
          degraded = true;
          fleetEvent("fleet-degraded", "", 0, 0,
                     std::to_string(healthy) + " usable worker(s), minimum " +
                         std::to_string(opt_.fleetMinWorkers) +
                         "; continuing in-process");
          std::fprintf(stderr,
                       "[syseco] fleet degraded below --fleet-min-workers; "
                       "continuing in-process\n");
          for (FleetPeer& p : peers) {
            if (p.task >= 0 &&
                tasks[static_cast<std::size_t>(p.task)].st ==
                    TaskState::kRunning) {
              // Reclaimed without consuming a retry attempt: the supervisor
              // is abandoning the agent, not the other way around.
              tasks[static_cast<std::size_t>(p.task)].st = TaskState::kPending;
              tasks[static_cast<std::size_t>(p.task)].peer = -1;
            }
            net::closeSocket(p.fd);
            p.rx.clear();
            p.task = -1;
            p.st = PeerState::kDead;
          }
        }
      }

      const double now = clock.seconds();
      const std::size_t horizon = std::min(tasks.size(), nextCommit + window);
      bool computedLocally = false;

      if (degraded) {
        // One task per pass keeps commits (and checkpoints) flowing.
        for (std::size_t k = nextCommit; k < horizon; ++k) {
          FleetTask& t = tasks[k];
          if (t.st != TaskState::kPending || t.notBefore > now) continue;
          Result<WorkerPatch> r =
              computeTask(base, spec_, workerOpt, failing[k], protect,
                          baseAnalysis_, specAnalysis_);
          computedLocally = true;
          if (r.isOk()) {
            t.patch.emplace(r.take());
            t.st = TaskState::kDone;
          } else {
            failAttempt(k,
                        r.status().code() == StatusCode::kBudgetExhausted
                            ? WorkerExitCause::kOom
                            : WorkerExitCause::kCrash,
                        "local", r.status().message());
          }
          break;
        }
      } else {
        // Launch phase: hand due pending tasks from the commit window to
        // idle peers.
        for (std::size_t k = nextCommit; k < horizon; ++k) {
          if (tasks[k].st != TaskState::kPending || tasks[k].notBefore > now)
            continue;
          int pi = -1;
          for (std::size_t i = 0; i < peers.size(); ++i)
            if (peers[i].st == PeerState::kIdle) {
              pi = static_cast<int>(i);
              break;
            }
          if (pi < 0) break;
          assignTask(k, static_cast<std::size_t>(pi));
        }
      }

      if (!degraded) {
        // Wait for a fleet event (or a backoff / lease tick).
        std::vector<int> fds;
        for (const FleetPeer& p : peers)
          if (p.fd >= 0) fds.push_back(p.fd);
        subprocess::pollReadable(fds, 20);

        // Service phase: drain streams, dispatch frames, classify breaks.
        for (std::size_t pi = 0; pi < peers.size(); ++pi) servicePeer(pi);

        // Lease enforcement: an assignment with no heartbeat inside its
        // lease is reclaimed. The connection is kept - the agent may still
        // deliver a now-stale result, and discarding it by epoch is cheaper
        // than resynchronizing a torn stream - but the peer stops counting
        // toward fleet health until that happens.
        const double tnow = clock.seconds();
        for (std::size_t k = nextCommit; k < tasks.size(); ++k) {
          FleetTask& t = tasks[k];
          if (t.st != TaskState::kRunning || tnow <= t.deadline) continue;
          const int pi = t.peer;
          std::string worker;
          if (pi >= 0) {
            FleetPeer& p = peers[static_cast<std::size_t>(pi)];
            worker = p.spec;
            p.st = PeerState::kLagging;
            p.staleEpoch = t.epoch;
          }
          failAttempt(k, WorkerExitCause::kLeaseExpired, worker,
                      "no heartbeat within the lease");
        }
      } else if (!computedLocally) {
        subprocess::pollReadable({}, 20);
      }

      // Commit phase: adopt finished tasks strictly in plan order through
      // the same path the in-process speculative mode uses.
      while (nextCommit < tasks.size() &&
             tasks[nextCommit].st == TaskState::kDone) {
        FleetTask& t = tasks[nextCommit];
        const std::uint32_t o = failing[nextCommit];
        bool reported = false;
        if (t.quarantined) {
          reported = commitQuarantined(o, t.attemptsFailed, t.lastCause);
        } else if (t.patch && t.patch->produced) {
          reported = commitWorker(o, *t.patch);
          if (reported && t.attemptsFailed > 0) {
            // The commit path reproduces the clean report; the supervisor
            // grafts on what the retries cost.
            diag_.outputs.back().workerFailedAttempts = t.attemptsFailed;
            diag_.outputs.back().workerExitCause = t.lastCause;
          }
        }
        t.patch.reset();
        ++nextCommit;
        // The committed patch crossed a network decode boundary before it
        // touched the canonical netlist; audit what it left behind.
        if (reported) auditBoundary("post-fleet-decode");
        if (reported && opt_.checkpointHook) {
          const RunCheckpoint cp{
              diag_.outputs.back(),
              diag_.outputs,
              w,
              tracker(),
              diag_.outputs.size(),
              plannedOutputs_,
              restoredConflicts_ + rootGuard_.conflictsUsed() +
                  extraConflicts_,
              restoredBddNodes_ + rootGuard_.bddNodesUsed() + extraBddNodes_};
          if (!opt_.checkpointHook(cp)) {
            interrupted = true;
            break;
          }
        }
      }
    }
    for (FleetPeer& p : peers) net::closeSocket(p.fd);
    return interrupted;
  }

  /// Worker entry point: rectifies one output of the base snapshot this
  /// engine was constructed with. `failingAll` is the full planned output
  /// set - the worker protects every planned output the way the sequential
  /// cascade protects still-unprocessed ones. Resources are unlimited
  /// (speculation only runs on unlimited runs). Returns true when a report
  /// was produced; the diagnostics fragment then holds exactly one entry.
  bool rectifyAsWorker(std::uint32_t o,
                       const std::vector<std::uint32_t>& failingAll) {
    trackerStore_.emplace(result_.rectified);
    tracker_ = &*trackerStore_;
    failingSet_.insert(failingAll.begin(), failingAll.end());
    ResourceGuard unlimited;
    return rectifyOutput(o, unlimited);
  }

  /// Borrow the canonical engine's immutable analyses (base snapshot and
  /// spec); must be called before rectifyAsWorker.
  void setSharedAnalyses(const NetlistAnalysis* base,
                         const NetlistAnalysis* spec) {
    baseAnalysis_ = base;
    specAnalysis_ = spec;
  }

  /// True while the working netlist is still byte-identical to the base
  /// analysis' snapshot: nothing rewired, nothing added. Gate/net counts
  /// only ever grow and rewiring is the only other mutation, so the check
  /// is exact.
  bool baseAnalysisFresh() const {
    return baseAnalysis_ != nullptr && tracker_ != nullptr &&
           tracker_->rewires().empty() &&
           result_.rectified.numGatesTotal() == baseAnalysis_->gatesAtBuild() &&
           result_.rectified.numNetsTotal() == baseAnalysis_->netsAtBuild();
  }

  std::uint32_t specOutput(std::uint32_t o) const {
    return spec_.findOutput(specOutputName(o));
  }
  const std::string& specOutputName(std::uint32_t o) const {
    return result_.rectified.outputName(o);
  }

  // --- Per-output rectification (the RewireRectification loop body) -------

  /// Returns true when an OutputReport was pushed (the caller's checkpoint
  /// hook fires only on real progress).
  bool rectifyOutput(std::uint32_t o, ResourceGuard& outGuard) {
    const std::uint32_t op = specOutput(o);
    if (op == kNullId) return false;
    Netlist& w = working();

    // The per-output search must depend only on (seed, output, current
    // netlist) - never on how the run got here - so that a journal resume
    // replays the remaining outputs bit-exactly. Both the RNG stream and
    // the spec-matching cloner (whose caches encode search history) are
    // re-derived at each output boundary.
    rng_.reseed(opt_.seed ^ (0x9e3779b97f4a7c15ULL *
                             (static_cast<std::uint64_t>(o) + 1)));
    cloner_.reset();

    Timer outputTimer;
    OutputReport report;
    report.output = o;
    report.name = w.outputName(o);
    activeGuard_ = &outGuard;
    degradeSteps_ = 0;
    effMaxPointSets_ = opt_.maxPointSets;

    // Earlier patches may have fixed this output already (global favoring).
    {
      Timer phase;
      PairEncoding pe(w, spec_);
      pe.setResourceGuard(&outGuard);
      const bool fixed = pe.solveDiffSwept(o, op, opt_.validationBudget,
                                           rng_) == Solver::Result::Unsat;
      diag_.secondsSampling += phase.seconds();
      if (fixed) {
        failingSet_.erase(o);
        finishReport(std::move(report), outGuard, /*viaFallback=*/false,
                     outputTimer.seconds());
        return true;
      }
    }

    Timer samplePhase;
    SampleSet samples = collectSamples(o, op, outGuard);
    diag_.secondsSampling += samplePhase.seconds();
    bool done = false;
    int screenOnlyRefines = 0;
    for (int iter = 0; iter < opt_.maxRefineIters && !done; ++iter) {
      if (!outGuard.checkpoint("syseco.refine").isOk()) break;
      if (iter > 0) ++diag_.refinementRounds;
      AttemptOutcome outcome = attempt(o, op, samples, outGuard);
      if (outcome.applied) {
        done = true;
        ++diag_.outputsViaRewire;
        break;
      }
      if (outcome.limit != StatusCode::kOk) break;  // budget/deadline: stop
      // Refine the sampling domain with whatever refuted the candidates:
      // SAT counterexamples first, then patterns the simulation screen
      // caught (both are genuine members of the mismatch evidence). Screen
      // evidence alone only buys a bounded number of extra rounds - it is
      // plentiful but weak.
      if (outcome.counterexamples.empty() &&
          outcome.screenCounterexamples.empty())
        break;  // refuted symbolically: nothing to learn from
      if (outcome.counterexamples.empty() && ++screenOnlyRefines > 2) break;
      // Cap the domain at 2N: beyond that the per-net BDDs grow while the
      // precision gain flattens (the trade-off of §5.1).
      for (InputPattern& cex : outcome.counterexamples) {
        if (samples.count() >= 2 * opt_.numSamples) break;
        samples.add(std::move(cex));
      }
      std::size_t taken = 0;
      for (InputPattern& cex : outcome.screenCounterexamples) {
        if (taken >= 4 || samples.count() >= 2 * opt_.numSamples) break;
        samples.add(std::move(cex));
        ++taken;
      }
    }
    if (!done) fallback(o, op);
    ++diag_.outputsRectified;
    failingSet_.erase(o);
    finishReport(std::move(report), outGuard, !done, outputTimer.seconds());
    return true;
  }

  void finishReport(OutputReport report, const ResourceGuard& outGuard,
                    bool viaFallback, double seconds) {
    activeGuard_ = nullptr;
    report.limit = outGuard.trippedCode();
    report.degradeSteps = degradeSteps_;
    report.conflictsUsed = outGuard.conflictsUsed();
    report.bddNodesUsed = outGuard.bddNodesUsed();
    report.seconds = seconds;
    if (viaFallback) {
      report.status = OutputRectStatus::kFallback;
    } else if (report.limit != StatusCode::kOk || degradeSteps_ > 0) {
      report.status = OutputRectStatus::kDegraded;
    } else {
      report.status = OutputRectStatus::kExact;
    }
    if (opt_.verbose)
      std::fprintf(stderr, "[syseco] out=%u -> %s (limit=%s, %.2fs)\n",
                   report.output, outputRectStatusName(report.status),
                   statusCodeName(report.limit), report.seconds);
    diag_.outputs.push_back(std::move(report));
  }

  SampleSet collectSamples(std::uint32_t o, std::uint32_t op,
                           ResourceGuard& guard) {
    SampleSet samples;
    // Degraded sampling: when the budget is already gone, skip the SAT
    // error-domain enumeration entirely and fall through to the uniform
    // top-up - weaker evidence, but free.
    const bool canEnumerate = guard.checkpoint("syseco.sampling").isOk();
    if (opt_.useErrorDomainSampling && canEnumerate) {
      PairEncoding pe(working(), spec_);
      pe.setResourceGuard(&guard);
      for (InputPattern& p :
           pe.enumerateErrors(o, op, opt_.numSamples, opt_.samplingBudget,
                              &rng_)) {
        samples.add(std::move(p));
      }
    }
    // Top up with uniform samples: a sparse error domain (sometimes a
    // single assignment on the pair's support) gives the required-function
    // machinery no context about what must be *preserved*. Uniform samples
    // are exactly that context; the error mask keeps them apart. This is
    // also the whole domain in the uniform-sampling ablation mode.
    while (samples.count() < opt_.numSamples) {
      InputPattern p(working().numInputs(), 0);
      for (auto& bit : p) bit = rng_.flip() ? 1 : 0;
      samples.add(std::move(p));
    }
    return samples;
  }

  /// Always succeeds: a circuit output is itself a rectification point with
  /// rectification function f', realized at the corresponding output of C'
  /// (completeness argument of §3.3). The clone is match-aware: spec
  /// sub-cones equivalent to existing implementation logic tap that logic
  /// instead of being replicated (the reuse principle of §1).
  void fallback(std::uint32_t o, std::uint32_t op) {
    Timer phase;
    // The cloner survives across fallbacks: re-driving an output changes no
    // internal net function, so its signatures, encodings and pinned
    // equivalences stay valid. Interior rewires (successful choices)
    // invalidate it - tryChoice resets it there.
    tracker().rewire(Sink{kNullId, o},
                     matchedClone(spec_.outputNet(op)));
    ++diag_.outputsViaFallback;
    diag_.secondsFallback += phase.seconds();
  }

  // --- One sampling-domain attempt ----------------------------------------

  AttemptOutcome attempt(std::uint32_t o, std::uint32_t op,
                         const SampleSet& samples, ResourceGuard& guard) {
    AttemptOutcome outcome;
    Netlist& w = working();

    // Sampled signatures of every net in W and in the spec.
    Rng fillRng = rng_.split();
    Simulator wSim = simulateOnSamples(w, w, samples, fillRng);
    Simulator sSim = simulateOnSamples(spec_, w, samples, fillRng);
    std::vector<std::uint64_t> errMask =
        errorMask(wSim.outputValue(o), sSim.outputValue(op), samples);
    if (countBits(errMask) == 0) {
      // Uniform samples that happen to miss the error domain entirely:
      // score on all samples instead.
      errMask = errorMask(Signature(samples.simWords(), ~0ULL),
                          Signature(samples.simWords(), 0), samples);
    }
    // Genuine samples where the output is already correct.
    std::vector<std::uint64_t> correctMask = errorMask(
        Signature(samples.simWords(), ~0ULL),
        Signature(samples.simWords(), 0), samples);
    for (std::size_t wd = 0; wd < correctMask.size(); ++wd)
      correctMask[wd] &= ~errMask[wd];

    // Shared-analysis fast path: while the working netlist is still the
    // pristine base snapshot (every speculative worker's first attempt, and
    // the first output of a sequential run), the cone, levels, supports and
    // topological order come from the immutable NetlistAnalysis instead of
    // being recomputed per attempt.
    const bool pristine = baseAnalysisFresh();
    std::vector<GateId> cone = pristine ? baseAnalysis_->outputConeGates(o)
                                        : w.coneGates({w.outputNet(o)});
    std::vector<std::uint32_t> wLevelsLocal;
    if (!pristine) wLevelsLocal = w.netLevels();
    const std::vector<std::uint32_t>& wLevels =
        pristine ? baseAnalysis_->netLevels() : wLevelsLocal;
    std::vector<std::uint64_t> allMask(errMask.size());
    for (std::size_t wd = 0; wd < allMask.size(); ++wd)
      allMask[wd] = errMask[wd] | correctMask[wd];
    std::vector<PinCandidate> pins =
        rankPins(o, cone, wSim, errMask, allMask);
    for (PinCandidate& pin : pins) pin.driverLevel = wLevels[pin.driver];
    if (pins.empty()) return outcome;

    // Validation screen: the samples plus a block of random patterns; a
    // candidate must survive it before the (expensive) SAT validation runs.
    SimScreen screen;
    screen.sampleCount = samples.count();
    for (const InputPattern& p : samples.patterns()) screen.patterns.add(p);
    for (std::size_t k = 0; k < 4096 - std::min<std::size_t>(
                                          samples.count(), 2048); ++k) {
      InputPattern p(w.numInputs(), 0);
      for (auto& bit : p) bit = rng_.flip() ? 1 : 0;
      screen.patterns.add(std::move(p));
    }
    {
      Rng screenFill = rng_.split();
      Simulator specScreen =
          simulateOnSamples(spec_, w, screen.patterns, screenFill);
      screen.specOut.resize(w.numOutputs());
      for (std::uint32_t oo = 0; oo < w.numOutputs(); ++oo) {
        const std::uint32_t sop = specOutput(oo);
        if (sop != kNullId) screen.specOut[oo] = specScreen.outputValue(sop);
      }
      Rng baseFill = rng_.split();
      screen.base = std::make_unique<Simulator>(
          simulateOnSamples(w, w, screen.patterns, baseFill));
      screen.baseNets = w.numNetsTotal();
      screen.topoIndex.assign(w.numGatesTotal(), 0);
      std::vector<GateId> topoLocal;
      if (!pristine) topoLocal = w.topoOrder();
      const std::vector<GateId>& topo =
          pristine ? baseAnalysis_->topoOrder() : topoLocal;
      for (std::size_t k = 0; k < topo.size(); ++k)
        screen.topoIndex[topo[k]] = static_cast<std::uint32_t>(k);
    }

    std::optional<SupportTable> wSupportsLocal;
    if (!pristine) wSupportsLocal.emplace(w);
    const SupportTable& wSupports =
        pristine ? baseAnalysis_->supports() : *wSupportsLocal;
    const std::vector<std::uint64_t> specOutMask =
        specOutSupportMaskInW(op, wSupports.words());
    const std::vector<std::uint32_t>& specLevels = specAnalysis_->netLevels();
    std::vector<NetId> specCone = specAnalysis_->outputConeNets(op);
    computeCloneCostDp(wSim, sSim);

    // Phase 1: gather candidate rewire operations across every point count
    // m and every feasible point-set, costed by expected patch growth
    // (cache-aware: spec logic that already exists in W is free).
    struct GatheredChoice {
      std::vector<std::size_t> ps;
      std::shared_ptr<std::vector<std::vector<NetCandidate>>> cands;
      RewireChoice choice;
    };
    std::vector<GatheredChoice> gathered;
    Timer symbolicPhase;
    for (std::size_t shrink = 0; shrink < 3 && !pins.empty(); ++shrink) {
      try {
        // Deterministic fault hook: forces the blowup / allocation-failure
        // recovery paths below without a genuinely huge design.
        if (const auto k = fault::fire("syseco.pointsets")) {
          if (*k == fault::Kind::kBddBlowup) throw BddLimitExceeded{};
          if (*k == fault::Kind::kAllocFailure) throw std::bad_alloc{};
        }
        for (int m = 1; m <= opt_.maxPoints; ++m) {
          // Higher point counts are exponentially costlier symbolically;
          // only escalate while the cheaper levels found too few options.
          if (gathered.size() >= opt_.maxChoices) break;
          std::vector<std::vector<std::size_t>> pointSets =
              enumeratePointSets(o, samples, wSim, sSim, pins, m, op, cone);
          if (opt_.verbose)
            std::fprintf(stderr,
                         "[syseco] out=%u m=%d pins=%zu pointsets=%zu\n", o, m,
                         pins.size(), pointSets.size());
          for (const auto& ps : pointSets) {
            if (!topologicallyIndependent(pins, ps, o)) {
              if (opt_.verbose)
                std::fprintf(stderr, "[syseco]   set rejected (topology)\n");
              continue;
            }
            auto cands =
                std::make_shared<std::vector<std::vector<NetCandidate>>>();
            cands->reserve(ps.size());
            for (std::size_t pi : ps) {
              cands->push_back(candidateNets(pins[pi], wSim, sSim, errMask,
                                             correctMask, wSupports,
                                             specOutMask, wLevels, specLevels,
                                             specCone, o));
            }
            std::vector<RewireChoice> choices = computeChoices(
                o, op, samples, wSim, sSim, pins, ps, *cands, cone);
            if (opt_.verbose)
              std::fprintf(stderr, "[syseco]   set size=%zu choices=%zu\n",
                           ps.size(), choices.size());
            for (RewireChoice& choice : choices)
              gathered.push_back(GatheredChoice{ps, cands, std::move(choice)});
          }
        }
        break;  // all m exhausted without node-limit trouble
      } catch (const BddLimitExceeded&) {
        // Staged degradation under design complexity or a drained node
        // ledger: halve the candidate pin set and the point-set quota,
        // then retry the smaller symbolic problem.
        gathered.clear();
        pins.resize(pins.size() / 2);
        effMaxPointSets_ = std::max<std::size_t>(effMaxPointSets_ / 2, 1);
        ++degradeSteps_;
      } catch (const std::bad_alloc&) {
        // Allocation pressure degrades the same way a node blowup does.
        gathered.clear();
        pins.resize(pins.size() / 2);
        effMaxPointSets_ = std::max<std::size_t>(effMaxPointSets_ / 2, 1);
        ++degradeSteps_;
      } catch (const StatusError& e) {
        // The deadline passed mid-construction: no smaller retry can help.
        diag_.secondsSymbolic += symbolicPhase.seconds();
        outcome.limit = e.status().code();
        return outcome;
      }
    }

    diag_.secondsSymbolic += symbolicPhase.seconds();

    // Phase 2: validate in increasing cost order. This is what makes the
    // engine prefer a 2-point rewire reusing tiny revision logic over a
    // 1-point wholesale cone replacement of equal sampling-domain validity.
    std::stable_sort(gathered.begin(), gathered.end(),
                     [](const GatheredChoice& a, const GatheredChoice& b) {
                       if (a.choice.cost != b.choice.cost)
                         return a.choice.cost < b.choice.cost;
                       return a.choice.tieLevel < b.choice.tieLevel;
                     });
    if (gathered.size() > opt_.maxChoices * 3)
      gathered.resize(opt_.maxChoices * 3);
    for (const GatheredChoice& gc : gathered) {
      if (!guard.checkpoint("syseco.choices").isOk()) {
        outcome.limit = guard.trippedCode();
        return outcome;
      }
      if (opt_.verbose) {
        std::fprintf(stderr, "[syseco]   try cost=%.2f:", gc.choice.cost);
        for (std::size_t i = 0; i < gc.ps.size(); ++i) {
          const NetCandidate& c = (*gc.cands)[i][gc.choice.pick[i]];
          std::fprintf(stderr, " pin(net %u)->%s%u(cc=%u)",
                       pins[gc.ps[i]].driver, c.fromSpec ? "spec" : "w",
                       c.net, c.cloneCost);
        }
        std::fputc('\n', stderr);
      }
      if (tryChoice(o, op, screen, pins, gc.ps, *gc.cands, gc.choice,
                    outcome)) {
        outcome.applied = true;
        return outcome;
      }
      if (outcome.counterexamples.size() >= 4) return outcome;
    }
    return outcome;
  }

  /// Signature-based DP estimating how many *new* gates cloning each spec
  /// net would add to W right now: nets whose sampled signature already
  /// exists in W (plain or complemented) are assumed matchable and free.
  void computeCloneCostDp(const Simulator& wSim, const Simulator& sSim) {
    std::unordered_set<std::uint64_t> wSigs;
    const Netlist& w = working();
    for (NetId n = 0; n < wSim.numNetsSimulated() && n < w.numNetsTotal();
         ++n) {
      const auto& net = w.net(n);
      const bool liveDriven =
          net.srcKind == Netlist::SourceKind::Input ||
          (net.srcKind == Netlist::SourceKind::Gate &&
           !w.gate(net.srcIdx).dead);
      if (!liveDriven) continue;
      wSigs.insert(hashSignature(wSim.value(n), false));
    }
    cloneCostDp_.assign(spec_.numNetsTotal(), 0);
    for (GateId g : specAnalysis_->topoOrder()) {
      const auto& gate = spec_.gate(g);
      const NetId out = gate.out;
      if (wSigs.count(hashSignature(sSim.value(out), false))) {
        cloneCostDp_[out] = 0;  // likely reused via functional matching
      } else if (wSigs.count(hashSignature(sSim.value(out), true))) {
        cloneCostDp_[out] = 1;  // complement match: one inverter
      } else {
        std::uint64_t c = 1;
        for (NetId f : gate.fanins) c += cloneCostDp_[f];
        cloneCostDp_[out] =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(c, 100000));
      }
    }
  }

  // --- Candidate rectification points (§4.2 pre-selection) ----------------

  std::vector<PinCandidate> rankPins(std::uint32_t o,
                                     const std::vector<GateId>& cone,
                                     const Simulator& wSim,
                                     const std::vector<std::uint64_t>& errMask,
                                     const std::vector<std::uint64_t>& allMask) {
    Netlist& w = working();
    const std::size_t words = errMask.size();
    // Observability propagated backwards through the cone, seeded twice:
    // by the error samples (the selection score) and by all genuine
    // samples (the don't-care structure of each point's required function).
    std::unordered_map<NetId, std::vector<std::uint64_t>> obs;
    std::unordered_map<NetId, std::vector<std::uint64_t>> obsFull;
    obs[w.outputNet(o)] = errMask;
    obsFull[w.outputNet(o)] = allMask;

    std::vector<PinCandidate> pins;
    // The output itself is a candidate rectification point ("or possibly at
    // circuit outputs", §3.2).
    pins.push_back(PinCandidate{{Sink{kNullId, o}},
                                w.outputNet(o),
                                countBits(errMask),
                                0,
                                errMask,
                                allMask});

    // Cone sink pins per net (for group candidates).
    std::unordered_map<NetId, std::vector<Sink>> coneSinksOf;

    for (auto it = cone.rbegin(); it != cone.rend(); ++it) {
      const GateId g = *it;
      const auto& gate = w.gate(g);
      auto oIt = obs.find(gate.out);
      if (oIt == obs.end()) continue;  // unobservable at this output
      const std::vector<std::uint64_t> gateObs = oIt->second;
      const std::vector<std::uint64_t> gateObsFull = obsFull[gate.out];
      std::vector<const Signature*> vals;
      vals.reserve(gate.fanins.size());
      for (NetId f : gate.fanins) vals.push_back(&wSim.value(f));
      for (std::size_t port = 0; port < gate.fanins.size(); ++port) {
        std::vector<std::uint64_t> pinObs(words, 0);
        std::vector<std::uint64_t> pinObsFull(words, 0);
        for (std::size_t wd = 0; wd < words; ++wd) {
          const std::uint64_t d = derivWord(gate.type, vals, port, wd);
          pinObs[wd] = gateObs[wd] & d;
          pinObsFull[wd] = gateObsFull[wd] & d;
        }
        const std::size_t score = countBits(pinObs);
        const Sink sink{g, static_cast<std::uint32_t>(port)};
        if (score > 0) {
          pins.push_back(PinCandidate{
              {sink}, gate.fanins[port], score, 0, pinObs, pinObsFull});
        }
        coneSinksOf[gate.fanins[port]].push_back(sink);
        auto& facc = obs[gate.fanins[port]];
        if (facc.empty()) facc.assign(words, 0);
        auto& faccFull = obsFull[gate.fanins[port]];
        if (faccFull.empty()) faccFull.assign(words, 0);
        for (std::size_t wd = 0; wd < words; ++wd) {
          facc[wd] |= pinObs[wd];
          faccFull[wd] |= pinObsFull[wd];
        }
      }
    }

    // Group candidates: all cone sinks of a net, rewired as one point.
    // Their observability is the accumulated net observability.
    for (auto& [net, sinks] : coneSinksOf) {
      if (sinks.size() < 2) continue;  // identical to the single pin
      const auto oIt = obs.find(net);
      if (oIt == obs.end()) continue;
      const std::size_t score = countBits(oIt->second);
      if (score == 0) continue;
      pins.push_back(
          PinCandidate{sinks, net, score, 0, oIt->second, obsFull[net]});
    }

    std::stable_sort(pins.begin(), pins.end(),
                     [](const PinCandidate& a, const PinCandidate& b) {
                       return a.score > b.score;
                     });
    if (pins.size() > opt_.maxCandidatePins)
      pins.resize(opt_.maxCandidatePins);
    return pins;
  }

  /// The topological constraint of §3.3: no path may connect any pair of
  /// selected pins. The output pin only combines with itself.
  bool topologicallyIndependent(const std::vector<PinCandidate>& pins,
                                const std::vector<std::size_t>& ps,
                                std::uint32_t o) {
    if (ps.size() <= 1) return true;
    Netlist& w = working();
    for (std::size_t a : ps) {
      if (pins[a].isOutputPin()) return false;  // everything reaches a PO
    }
    // Pins within one group share a variable, so only cross-group paths
    // violate the constraint.
    for (std::size_t a : ps) {
      std::unordered_set<GateId> reach;
      for (const Sink& s : pins[a].sinks) {
        for (GateId g : reachableGates(w, w.gate(s.gate).out))
          reach.insert(g);
      }
      for (std::size_t b : ps) {
        if (a == b) continue;
        for (const Sink& s : pins[b].sinks) {
          if (!s.isOutput() && reach.count(s.gate)) return false;
        }
      }
    }
    (void)o;
    return true;
  }

  static std::unordered_set<GateId> reachableGates(const Netlist& w,
                                                   NetId from) {
    std::unordered_set<GateId> seen;
    std::vector<NetId> stack{from};
    while (!stack.empty()) {
      const NetId n = stack.back();
      stack.pop_back();
      for (const Sink& s : w.net(n).sinks) {
        if (s.isOutput()) continue;
        if (seen.insert(s.gate).second) stack.push_back(w.gate(s.gate).out);
      }
    }
    return seen;
  }

  /// Nets reachable (forward) from `from`, for rewire cycle avoidance.
  static std::unordered_set<NetId> reachableNets(const Netlist& w,
                                                 NetId from) {
    std::unordered_set<NetId> seen{from};
    std::vector<NetId> stack{from};
    while (!stack.empty()) {
      const NetId n = stack.back();
      stack.pop_back();
      for (const Sink& s : w.net(n).sinks) {
        if (s.isOutput()) continue;
        const NetId out = w.gate(s.gate).out;
        if (seen.insert(out).second) stack.push_back(out);
      }
    }
    return seen;
  }

  // --- Symbolic cone evaluation over the sampling domain ------------------

  struct SymbolicCone {
    Bdd* mgr = nullptr;
    const Simulator* sim = nullptr;
    std::vector<std::uint32_t> zVars;
    std::unordered_map<NetId, Bdd::Ref> netBdd;
    std::unordered_map<std::uint64_t, std::size_t> pinIndex;  // pinKey->idx

    Bdd::Ref signatureBdd(NetId n) {
      if (auto it = netBdd.find(n); it != netBdd.end()) return it->second;
      const Bdd::Ref r = mgr->fromTruthTable(sim->value(n), zVars);
      netBdd.emplace(n, r);
      return r;
    }
  };

  /// Evaluates the cone of output `o` symbolically; at each listed pin,
  /// `wrap(base, idx)` substitutes the pin's value (mux for H, y for Xi).
  /// Untainted sub-cones use their sampled signatures directly - this is
  /// what keeps the computation "independent of the design size".
  template <typename WrapFn>
  Bdd::Ref evalOutput(SymbolicCone& sc, std::uint32_t o,
                      const std::vector<GateId>& cone,
                      const std::vector<PinCandidate>& pins,
                      const std::vector<std::size_t>& ps, WrapFn wrap) {
    Netlist& w = working();
    // Taint: gates whose value depends on a substituted pin.
    std::unordered_set<GateId> tainted;
    std::unordered_set<GateId> coneSet(cone.begin(), cone.end());
    sc.pinIndex.clear();
    for (std::size_t k = 0; k < ps.size(); ++k) {
      for (const Sink& s : pins[ps[k]].sinks) {
        sc.pinIndex.emplace(pinKey(s), k);
        if (!s.isOutput()) tainted.insert(s.gate);
      }
    }
    for (GateId g : cone) {  // topological order propagates taint forward
      if (tainted.count(g)) continue;
      for (NetId f : w.gate(g).fanins) {
        const GateId d = w.driverOf(f);
        if (d != kNullId && tainted.count(d)) {
          tainted.insert(g);
          break;
        }
      }
    }

    Bdd& mgr = *sc.mgr;
    for (GateId g : cone) {
      if (!tainted.count(g)) continue;
      const auto& gate = w.gate(g);
      std::vector<Bdd::Ref> in;
      in.reserve(gate.fanins.size());
      for (std::size_t port = 0; port < gate.fanins.size(); ++port) {
        const NetId f = gate.fanins[port];
        const GateId d = w.driverOf(f);
        Bdd::Ref v = (d != kNullId && tainted.count(d))
                         ? sc.netBdd.at(f)
                         : sc.signatureBdd(f);
        const auto pit =
            sc.pinIndex.find(pinKey(Sink{g, static_cast<std::uint32_t>(port)}));
        if (pit != sc.pinIndex.end()) v = wrap(v, pit->second);
        in.push_back(v);
      }
      Bdd::Ref r = Bdd::kFalse;
      switch (gate.type) {
        case GateType::Const0: r = Bdd::kFalse; break;
        case GateType::Const1: r = Bdd::kTrue; break;
        case GateType::Buf: r = in[0]; break;
        case GateType::Not: r = mgr.bNot(in[0]); break;
        case GateType::And: r = mgr.andMany(in); break;
        case GateType::Nand: r = mgr.bNot(mgr.andMany(in)); break;
        case GateType::Or: r = mgr.orMany(in); break;
        case GateType::Nor: r = mgr.bNot(mgr.orMany(in)); break;
        case GateType::Xor:
        case GateType::Xnor: {
          r = in[0];
          for (std::size_t k = 1; k < in.size(); ++k) r = mgr.bXor(r, in[k]);
          if (gate.type == GateType::Xnor) r = mgr.bNot(r);
          break;
        }
        case GateType::Mux: r = mgr.ite(in[0], in[2], in[1]); break;
      }
      sc.netBdd[gate.out] = r;
    }

    const NetId outNet = w.outputNet(o);
    const GateId outDrv = w.driverOf(outNet);
    Bdd::Ref h = (outDrv != kNullId && tainted.count(outDrv))
                     ? sc.netBdd.at(outNet)
                     : sc.signatureBdd(outNet);
    // The output pin itself may be a rectification point.
    const auto pit = sc.pinIndex.find(pinKey(Sink{kNullId, o}));
    if (pit != sc.pinIndex.end()) h = wrap(h, pit->second);
    return h;
  }

  // --- Feasible rectification point-sets via H(t) (§4.2) ------------------

  /// Engine tunables for the sampling-domain managers (H(t) / Xi(c)).
  /// These keep identity order regardless of opt_.bddReorder: their
  /// variables are sample indices and selector bits - an arbitrary
  /// encoding with no structure for sifting to exploit - and no root
  /// provider is registered, so auto-reorder stays disarmed by design
  /// (the knob governs the monolithic-cone managers: the certification
  /// oracle's BDD route and, opted in, the exactfix engine). Cache and
  /// table sizing still apply.
  BddConfig samplingBddConfig() const {
    BddConfig cfg;
    cfg.nodeLimit = opt_.bddNodeLimit;
    if (opt_.bddCacheBits != 0) {
      cfg.cacheBits = opt_.bddCacheBits;
      cfg.maxCacheBits = std::max(cfg.maxCacheBits, opt_.bddCacheBits);
    }
    if (opt_.bddReorderThreshold != 0)
      cfg.reorderThreshold = opt_.bddReorderThreshold;
    return cfg;
  }

  std::vector<std::vector<std::size_t>> enumeratePointSets(
      std::uint32_t o, const SampleSet& samples, const Simulator& wSim,
      const Simulator& sSim, const std::vector<PinCandidate>& pins, int m,
      std::uint32_t op, const std::vector<GateId>& cone) {
    const std::uint32_t nz = samples.numZVars();
    const std::size_t M = pins.size();
    std::uint32_t tb = 0;
    while ((std::size_t{1} << tb) < M) ++tb;
    if (tb == 0) tb = 1;
    const std::uint32_t numVars =
        nz + static_cast<std::uint32_t>(m) +
        static_cast<std::uint32_t>(m) * tb;

    Bdd mgr(numVars, samplingBddConfig());
    mgr.setResourceGuard(activeGuard_);
    std::vector<std::uint32_t> zVars(nz);
    for (std::uint32_t i = 0; i < nz; ++i) zVars[i] = i;
    std::vector<std::uint32_t> yVars(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i)
      yVars[static_cast<std::size_t>(i)] = nz + static_cast<std::uint32_t>(i);
    std::vector<std::vector<std::uint32_t>> tVars(static_cast<std::size_t>(m));
    std::uint32_t next = nz + static_cast<std::uint32_t>(m);
    for (int i = 0; i < m; ++i) {
      for (std::uint32_t b = 0; b < tb; ++b)
        tVars[static_cast<std::size_t>(i)].push_back(next++);
    }

    // Minterms t_i^j: decision "pin q_j is the i-th rectification point".
    std::vector<std::vector<Bdd::Ref>> mint(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < M; ++j)
        mint[static_cast<std::size_t>(i)].push_back(mgr.mintermOf(
            static_cast<std::uint32_t>(j), tVars[static_cast<std::size_t>(i)]));
    }

    // All pins participate: ps = identity.
    std::vector<std::size_t> allPins(M);
    for (std::size_t j = 0; j < M; ++j) allPins[j] = j;

    SymbolicCone sc;
    sc.mgr = &mgr;
    sc.sim = &wSim;
    sc.zVars = zVars;

    // Figure 2's construct: sel_j = OR_i t_i^j; data1_j = AND_i(t_i^j -> y_i).
    auto wrap = [&](Bdd::Ref base, std::size_t j) {
      Bdd::Ref sel = Bdd::kFalse;
      Bdd::Ref data1 = Bdd::kTrue;
      for (int i = 0; i < m; ++i) {
        const Bdd::Ref tij = mint[static_cast<std::size_t>(i)][j];
        sel = mgr.bOr(sel, tij);
        data1 = mgr.bAnd(
            data1, mgr.bImp(tij, mgr.var(yVars[static_cast<std::size_t>(i)])));
      }
      return mgr.ite(sel, data1, base);
    };

    const Bdd::Ref h = evalOutput(sc, o, cone, pins, allPins, wrap);
    const Bdd::Ref fPrime =
        mgr.fromTruthTable(sSim.value(spec_.outputNet(op)), zVars);

    // H(t) = forall z exists y (h == f'), restricted to valid encodings.
    Bdd::Ref equal = mgr.bXnor(h, fPrime);
    Bdd::Ref inner = mgr.exists(equal, yVars);
    Bdd::Ref H = mgr.forall(inner, zVars);
    for (int i = 0; i < m; ++i) {
      Bdd::Ref valid = Bdd::kFalse;
      for (std::size_t j = 0; j < M; ++j)
        valid = mgr.bOr(valid, mint[static_cast<std::size_t>(i)][j]);
      H = mgr.bAnd(H, valid);
    }
    if (H == Bdd::kFalse) return {};

    // Prime-cube seeds (§4.2): each ISOP cube is an implicant of H; any
    // index assignment consistent with its literals is a feasible set.
    std::vector<std::vector<std::size_t>> sets;
    std::vector<std::vector<std::size_t>> seen;
    auto addSet = [&](std::vector<std::size_t> s) {
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());  // merged selections
      if (std::find(seen.begin(), seen.end(), s) == seen.end()) {
        seen.push_back(s);
        sets.push_back(std::move(s));
      }
    };
    const std::vector<BddCube> cubes = mgr.isop(H);
    for (const BddCube& cube : cubes) {
      if (sets.size() >= effMaxPointSets_ * 4) break;
      // All pin indices consistent with the cube's t_i literals, per point.
      std::vector<std::vector<std::size_t>> consistent(
          static_cast<std::size_t>(m));
      bool ok = true;
      for (int i = 0; i < m && ok; ++i) {
        const auto& tv = tVars[static_cast<std::size_t>(i)];
        for (std::size_t j = 0; j < M; ++j) {
          bool fits = true;
          for (std::uint32_t b = 0; b < tb && fits; ++b) {
            const std::int8_t lit = cube.lits[tv[b]];
            const bool bit = (j >> (tb - 1 - b)) & 1;  // big-endian v^j
            if (lit >= 0 && lit != static_cast<std::int8_t>(bit)) fits = false;
          }
          if (fits) consistent[static_cast<std::size_t>(i)].push_back(j);
        }
        ok = !consistent[static_cast<std::size_t>(i)].empty();
      }
      if (!ok) continue;
      // A cube with don't-care selector bits denotes the cross product of
      // its per-position consistent pin lists; sample it (bounded) so H's
      // solution space is actually covered - e.g. the Figure-1 pair
      // (v0 pin, v1 pin) lives in one cube next to many weaker pairs.
      // For m >= 2 the output pin never combines (topological constraint),
      // so drop it from the lists up front.
      if (m >= 2) {
        bool dead = false;
        for (auto& list : consistent) {
          std::erase_if(list,
                        [&](std::size_t j) { return pins[j].isOutputPin(); });
          dead |= list.empty();
        }
        if (dead) continue;  // this cube only covered output-pin tuples
      }
      // Base tuple plus random samples of the cross product.
      std::vector<std::size_t> s;
      for (int i = 0; i < m; ++i)
        s.push_back(consistent[static_cast<std::size_t>(i)][0]);
      addSet(std::move(s));
      for (std::size_t draw = 0; draw < 15; ++draw) {
        if (sets.size() >= effMaxPointSets_ * 4) break;
        std::vector<std::size_t> t;
        for (int i = 0; i < m; ++i)
          t.push_back(rng_.pick(consistent[static_cast<std::size_t>(i)]));
        addSet(std::move(t));
      }
    }
    // Prefer smaller sets, then higher total observability.
    std::stable_sort(sets.begin(), sets.end(),
                     [&](const auto& a, const auto& b) {
                       if (a.size() != b.size()) return a.size() < b.size();
                       std::size_t sa = 0, sb = 0;
                       for (auto i : a) sa += pins[i].score;
                       for (auto i : b) sb += pins[i].score;
                       return sa > sb;
                     });
    if (sets.size() > effMaxPointSets_) sets.resize(effMaxPointSets_);
    return sets;
  }

  // --- Candidate rewiring nets (§4.3) --------------------------------------

  std::vector<NetCandidate> candidateNets(
      const PinCandidate& pin, const Simulator& wSim, const Simulator& sSim,
      const std::vector<std::uint64_t>& errMask,
      const std::vector<std::uint64_t>& correctMask,
      const SupportTable& wSupports,
      const std::vector<std::uint64_t>& specOutMask,
      const std::vector<std::uint32_t>& wLevels,
      const std::vector<std::uint32_t>& specLevels,
      const std::vector<NetId>& specCone, std::uint32_t o) {
    Netlist& w = working();
    const std::size_t errCount = std::max<std::size_t>(countBits(errMask), 1);
    const Signature& pinSig = wSim.value(pin.driver);

    // §4.3 rectification utility: difference ratio on the error domain.
    auto utilityOf = [&](const Signature& candSig) {
      std::size_t diff = 0;
      for (std::size_t wd = 0; wd < errMask.size(); ++wd)
        diff += static_cast<std::size_t>(
            std::popcount((pinSig[wd] ^ candSig[wd]) & errMask[wd]));
      return static_cast<double>(diff) / static_cast<double>(errCount);
    };
    // Ranking refinement: differing on error samples helps, differing on
    // already-correct samples risks breaking them - but only where this
    // point is observable at all. (The paper's heuristic uses only the
    // error-domain ratio; Xi(c) still decides exactly.)
    auto agreementOf = [&](const Signature& candSig) {
      std::ptrdiff_t key = 0;
      for (std::size_t wd = 0; wd < errMask.size(); ++wd) {
        const std::uint64_t obsF =
            pin.obsFullMask.empty() ? ~0ULL : pin.obsFullMask[wd];
        const std::uint64_t diff = pinSig[wd] ^ candSig[wd];
        key += std::popcount(diff & errMask[wd]);
        key -= 2 * std::popcount(diff & correctMask[wd] & obsF);
      }
      return key;
    };

    std::vector<NetCandidate> ranked;

    // Rewiring a pin of gate g to net s is acyclic iff s is not in TFO(g).
    std::unordered_set<NetId> forbidden;
    for (const Sink& s : pin.sinks) {
      if (s.isOutput()) continue;
      for (NetId n : reachableNets(w, w.gate(s.gate).out)) forbidden.insert(n);
    }

    // Candidates from the current implementation. Nets created after the
    // attempt's support/signature snapshot (rolled-back clone fragments)
    // are not considered.
    const NetId scanLimit = static_cast<NetId>(
        std::min<std::size_t>(w.numNetsTotal(),
                              std::min(wSupports.numNets(),
                                       wSim.numNetsSimulated())));
    for (NetId n = 0; n < scanLimit; ++n) {
      const auto& net = w.net(n);
      const bool liveDriven =
          net.srcKind == Netlist::SourceKind::Input ||
          (net.srcKind == Netlist::SourceKind::Gate &&
           !w.gate(net.srcIdx).dead);
      if (!liveDriven || n == pin.driver) continue;
      if (forbidden.count(n)) continue;
      // Structural filter: the revised output's input dependence must
      // contain the candidate's transitive fanins.
      if (!wSupports.subsetOf(n, specOutMask)) continue;
      // Signatures are filled in only for survivors (copying one per net
      // over the whole netlist would dominate the attempt's cost).
      ranked.push_back(NetCandidate{n, false, utilityOf(wSim.value(n)),
                                    wLevels[n], 0,
                                    agreementOf(wSim.value(n)),
                                    {}});
    }
    // Candidates from the synthesized specification's cone. Reusing a spec
    // net means instantiating its clone, so its approximate cone size
    // participates in the ranking: small revision logic (the injected delta
    // region) beats wholesale cone copies of equal utility.
    for (NetId n : specCone) {
      ranked.push_back(NetCandidate{n, true, utilityOf(sSim.value(n)),
                                    specLevels[n], cloneCostDp_[n],
                                    agreementOf(sSim.value(n)),
                                    {}});
    }

    if (opt_.useUtilityHeuristic) {
      auto rankKey = [&](const NetCandidate& c) {
        return static_cast<double>(c.rankScore) -
               0.02 * static_cast<double>(std::min<std::uint32_t>(
                          c.cloneCost, 500));
      };
      std::stable_sort(ranked.begin(), ranked.end(),
                       [&](const NetCandidate& a, const NetCandidate& b) {
                         const double ka = rankKey(a), kb = rankKey(b);
                         if (opt_.levelDriven && std::abs(ka - kb) < 1e-9)
                           return a.level < b.level;
                         return ka > kb;
                       });
    } else {
      Rng shuffler = rng_.split();
      shuffler.shuffle(ranked);
    }
    if (ranked.size() > opt_.maxRewireNets + 12)
      ranked.resize(opt_.maxRewireNets + 12);  // margin for synthesis basis
    for (NetCandidate& c : ranked)
      c.sig = c.fromSpec ? sSim.value(c.net) : wSim.value(c.net);

    // #SAT re-ranking: the popcount key above is the cheap prefilter over
    // the full netlist scan; the shortlist that validation will actually
    // try is re-scored by exact model counting over the sampling domain
    // (satisfying fraction of diff & E, see sharpsat.hpp). The counts are
    // exactly the popcounts, so the re-sort provably reproduces the
    // prefilter order - kSharpSat changes measurements, not verdicts.
    std::optional<SharpSatRanker> sharp;
    if (opt_.rankMode == RankMode::kSharpSat) {
      sharp.emplace(pinSig, errMask, correctMask, pin.obsFullMask);
      for (NetCandidate& c : ranked) {
        const CoverageScore s = sharp->score(c.sig);
        c.utility = s.errorCoverage;
        c.rankScore = s.rankKey;
      }
      if (opt_.useUtilityHeuristic) {
        auto rankKey = [&](const NetCandidate& c) {
          return static_cast<double>(c.rankScore) -
                 0.02 * static_cast<double>(std::min<std::uint32_t>(
                            c.cloneCost, 500));
        };
        std::stable_sort(ranked.begin(), ranked.end(),
                         [&](const NetCandidate& a, const NetCandidate& b) {
                           const double ka = rankKey(a), kb = rankKey(b);
                           if (opt_.levelDriven && std::abs(ka - kb) < 1e-9)
                             return a.level < b.level;
                           return ka > kb;
                         });
      }
    }

    // Rectification function synthesis (extension of the paper's "future
    // work ... rectification logic synthesis"): when no existing net
    // realizes the needed function, try small algebraic combinations of
    // the strongest existing candidates against the pin's *required*
    // sampled function (flip where the errors are observable, hold
    // elsewhere). Hits are materialized as fresh W gates and compete as
    // ordinary candidates with a 1-2 gate cost.
    if (opt_.synthesizeFunctions && !pin.obsMask.empty()) {
      // Required function of this point: flip where the errors are
      // observable, hold where correct values are observable; samples the
      // point cannot influence are don't-cares.
      Signature required = pinSig;
      for (std::size_t wd = 0; wd < required.size(); ++wd)
        required[wd] ^= errMask[wd] & pin.obsMask[wd];
      std::vector<std::uint64_t> careMask(errMask.size());
      for (std::size_t wd = 0; wd < careMask.size(); ++wd)
        careMask[wd] = (errMask[wd] | correctMask[wd]) &
                       (pin.obsFullMask.empty() ? ~0ULL
                                                : pin.obsFullMask[wd]);
      auto matchesRequired = [&](const Signature& s) {
        for (std::size_t wd = 0; wd < required.size(); ++wd)
          if ((s[wd] ^ required[wd]) & careMask[wd]) return false;
        return true;
      };
      // Synthesis is pointless only when a *free* exact realization
      // already exists (an existing net); a matching spec net still costs
      // its clone, which a 1-2 gate synthesized function may undercut.
      bool haveFreeExact = false;
      for (const NetCandidate& c : ranked)
        haveFreeExact |= c.cloneCost == 0 && matchesRequired(c.sig);
      if (!haveFreeExact) {
        std::vector<NetCandidate> synth =
            synthesizeCandidates(pin, pinSig, ranked, required, careMask,
                                 forbidden, wLevels, scanLimit);
        for (NetCandidate& c : synth) {
          if (sharp) {
            const CoverageScore s = sharp->score(c.sig);
            c.utility = s.errorCoverage;
            c.rankScore = s.rankKey;
          } else {
            c.utility = utilityOf(c.sig);
            c.rankScore = agreementOf(c.sig);
          }
          // Synthesized exact matches outrank everything; put them first.
          ranked.insert(ranked.begin(), std::move(c));
        }
      }
    }

    std::vector<NetCandidate> out;
    // Index 0 is the trivial candidate: the pin keeps its driver (needed
    // because H(t) may over-approximate the number of points, §5.2).
    if (opt_.includeTrivialCandidate) {
      out.push_back(NetCandidate{pin.driver, false, 0.0,
                                 wLevels[pin.driver], 0, 0, pinSig});
    }
    for (const NetCandidate& c : ranked) {
      if (out.size() >= opt_.maxRewireNets) break;
      out.push_back(c);
    }
    (void)o;
    return out;
  }

  /// Tries small algebraic combinations (inversion, two-operand AND / OR /
  /// XOR with optional input negations) of the strongest candidates
  /// against the required sampled function; matches are materialized as
  /// fresh gates in W and returned as candidates. Implements the
  /// rectification-logic-synthesis direction of the paper's conclusions.
  std::vector<NetCandidate> synthesizeCandidates(
      const PinCandidate& pin, const Signature& pinSig,
      const std::vector<NetCandidate>& ranked, const Signature& required,
      const std::vector<std::uint64_t>& careMask,
      const std::unordered_set<NetId>& forbidden,
      const std::vector<std::uint32_t>& wLevels, NetId scanLimit) {
    Netlist& w = working();
    // Basis: the pin's own driver (added-condition revisions are
    // "driver AND c" shaped) plus the best-ranked existing nets.
    struct Basis {
      NetId net;
      const Signature* sig;
      std::uint32_t level;
    };
    std::vector<Basis> basis;
    if (!forbidden.count(pin.driver) && pin.driver < scanLimit)
      basis.push_back(Basis{pin.driver, &pinSig, wLevels[pin.driver]});
    std::vector<std::size_t> order(ranked.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return ranked[a].rankScore > ranked[b].rankScore;
                     });
    for (std::size_t k = 0; k < order.size() && basis.size() < 11; ++k) {
      const NetCandidate& c = ranked[order[k]];
      if (c.fromSpec) continue;  // keep synthesis over existing W logic
      basis.push_back(Basis{c.net, &c.sig, c.level});
    }

    auto matches = [&](const Signature& s) {
      for (std::size_t wd = 0; wd < required.size(); ++wd)
        if ((s[wd] ^ required[wd]) & careMask[wd]) return false;
      return true;
    };

    std::vector<NetCandidate> hits;
    const std::size_t words = required.size();
    Signature tmp(words, 0);
    auto emit = [&](NetId net, const Signature& sig, std::uint32_t level,
                    std::uint32_t gates) {
      NetCandidate c;
      c.net = net;
      c.fromSpec = false;
      c.level = level;
      c.cloneCost = gates;
      c.sig = sig;
      hits.push_back(std::move(c));
    };

    // Unary: complement of a basis net.
    for (const Basis& a : basis) {
      if (hits.size() >= 3) break;
      if (!a.sig) continue;
      for (std::size_t wd = 0; wd < words; ++wd) tmp[wd] = ~(*a.sig)[wd];
      if (matches(tmp)) {
        const NetId g = w.addGate(GateType::Not, {a.net});
        emit(g, tmp, a.level + 1, 1);
      }
    }
    // Binary combinations with optional input negation.
    struct Op {
      GateType type;
      bool negA;
      bool negB;
    };
    static constexpr Op kOps[] = {
        {GateType::And, false, false},  {GateType::Or, false, false},
        {GateType::Xor, false, false},  {GateType::Nand, false, false},
        {GateType::Nor, false, false},  {GateType::Xnor, false, false},
        {GateType::And, true, false},   {GateType::And, false, true},
        {GateType::Or, true, false},    {GateType::Or, false, true},
    };
    for (std::size_t i = 0; i < basis.size() && hits.size() < 3; ++i) {
      for (std::size_t j = i + 1; j < basis.size() && hits.size() < 3; ++j) {
        const Basis& a = basis[i];
        const Basis& b = basis[j];
        if (!a.sig || !b.sig) continue;
        for (const Op& op : kOps) {
          for (std::size_t wd = 0; wd < words; ++wd) {
            const std::uint64_t va =
                op.negA ? ~(*a.sig)[wd] : (*a.sig)[wd];
            const std::uint64_t vb =
                op.negB ? ~(*b.sig)[wd] : (*b.sig)[wd];
            const std::uint64_t ops[2] = {va, vb};
            tmp[wd] = evalGateWord(op.type, ops, 2);
          }
          if (!matches(tmp)) continue;
          NetId na = a.net, nb = b.net;
          std::uint32_t gates = 1;
          if (op.negA) {
            na = w.addGate(GateType::Not, {na});
            ++gates;
          }
          if (op.negB) {
            nb = w.addGate(GateType::Not, {nb});
            ++gates;
          }
          emit(w.addGate(op.type, {na, nb}), tmp,
               std::max(a.level, b.level) + 2, gates);
          break;  // one op per pair suffices
        }
      }
    }
    return hits;
  }

  std::vector<std::uint64_t> specOutSupportMaskInW(std::uint32_t op,
                                                   std::size_t words) {
    Netlist& w = working();
    std::vector<std::uint64_t> mask(words, 0);
    for (std::uint32_t pi : specAnalysis_->outputSupport(op)) {
      const std::uint32_t iw = w.findInput(spec_.inputName(pi));
      if (iw != kNullId) mask[iw / 64] |= (std::uint64_t{1} << (iw % 64));
    }
    return mask;
  }

  /// Match-aware clone of a spec net into W. The cloner persists across
  /// attempts, outputs and fallbacks: rollbacks restore pre-existing pins
  /// and output re-drives change no internal function, so its signatures,
  /// encodings, caches and pinned equivalences stay valid. Only a
  /// *successful interior rewire* invalidates it (tryChoice resets it).
  NetId matchedClone(NetId specNet) {
    if (!cloner_) {
      MatcherOptions mopts;
      // Confirmations are per-net and plentiful; keep each one cheap. A
      // budget trip means "clone instead of reuse" - sweeping recovers
      // most of the loss at a fraction of the SAT cost.
      mopts.confirmBudget = 4000;
      Rng matchRng = rng_.split();
      cloner_ = std::make_unique<MatchedSpecCloner>(tracker(), spec_, mopts,
                                                    matchRng);
    }
    return cloner_->clone(specNet);
  }

  // --- Rewiring choices via Xi(c) (§4.4, Theorem 1) -------------------------

  std::vector<RewireChoice> computeChoices(
      std::uint32_t o, std::uint32_t op, const SampleSet& samples,
      const Simulator& wSim, const Simulator& sSim,
      const std::vector<PinCandidate>& pins,
      const std::vector<std::size_t>& ps,
      const std::vector<std::vector<NetCandidate>>& cands,
      const std::vector<GateId>& cone) {
    const std::uint32_t nz = samples.numZVars();
    const std::size_t m = ps.size();
    std::vector<std::uint32_t> cBits(m);
    std::uint32_t totalC = 0;
    for (std::size_t i = 0; i < m; ++i) {
      std::uint32_t b = 0;
      while ((std::size_t{1} << b) < cands[i].size()) ++b;
      cBits[i] = std::max<std::uint32_t>(b, 1);
      totalC += cBits[i];
    }
    const std::uint32_t numVars =
        nz + static_cast<std::uint32_t>(m) + totalC;
    Bdd mgr(numVars, samplingBddConfig());
    mgr.setResourceGuard(activeGuard_);

    std::vector<std::uint32_t> zVars(nz);
    for (std::uint32_t i = 0; i < nz; ++i) zVars[i] = i;
    std::vector<std::uint32_t> yVars(m);
    for (std::size_t i = 0; i < m; ++i)
      yVars[i] = nz + static_cast<std::uint32_t>(i);
    std::vector<std::vector<std::uint32_t>> cVars(m);
    std::uint32_t next = nz + static_cast<std::uint32_t>(m);
    for (std::size_t i = 0; i < m; ++i)
      for (std::uint32_t b = 0; b < cBits[i]; ++b) cVars[i].push_back(next++);

    SymbolicCone sc;
    sc.mgr = &mgr;
    sc.sim = &wSim;
    sc.zVars = zVars;

    // Composition function h(z, y): the selected pins become free inputs.
    auto wrap = [&](Bdd::Ref /*base*/, std::size_t i) {
      return mgr.var(yVars[i]);
    };
    const Bdd::Ref h = evalOutput(sc, o, cone, pins, ps, wrap);
    const Bdd::Ref fPrime =
        mgr.fromTruthTable(sSim.value(spec_.outputNet(op)), zVars);

    // R(z, y, c) = AND_i AND_j (c_i = j  ->  y_i == r_ij(z)).
    Bdd::Ref R = Bdd::kTrue;
    Bdd::Ref validC = Bdd::kTrue;
    for (std::size_t i = 0; i < m; ++i) {
      Bdd::Ref anyC = Bdd::kFalse;
      for (std::size_t j = 0; j < cands[i].size(); ++j) {
        const Bdd::Ref cij =
            mgr.mintermOf(static_cast<std::uint32_t>(j), cVars[i]);
        anyC = mgr.bOr(anyC, cij);
        // Each candidate carries its own sampled function (spec nets,
        // W nets and synthesized functions alike).
        const Bdd::Ref rij = mgr.fromTruthTable(cands[i][j].sig, zVars);
        R = mgr.bAnd(R,
                     mgr.bImp(cij, mgr.bXnor(mgr.var(yVars[i]), rij)));
      }
      validC = mgr.bAnd(validC, anyC);
    }

    // Theorem 1: Xi(c) = forall z,y ((L -> h) AND (h -> U)).
    const Bdd::Ref L = mgr.bAnd(fPrime, R);
    const Bdd::Ref U = mgr.bOr(fPrime, mgr.bNot(R));
    const Bdd::Ref F = mgr.bAnd(mgr.bImp(L, h), mgr.bImp(h, U));
    std::vector<std::uint32_t> zy = zVars;
    zy.insert(zy.end(), yVars.begin(), yVars.end());
    Bdd::Ref Xi = mgr.bAnd(mgr.forall(F, zy), validC);

    // Enumerate concrete rewire operations, cheapest first.
    std::vector<RewireChoice> choices;
    Bdd::Ref rem = Xi;
    for (std::size_t round = 0;
         round < opt_.maxChoices * 2 && rem != Bdd::kFalse; ++round) {
      BddCube cube;
      if (!mgr.pickCube(rem, cube)) break;
      RewireChoice choice;
      choice.pick.resize(m);
      bool ok = true;
      Bdd::Ref assignment = Bdd::kTrue;
      for (std::size_t i = 0; i < m && ok; ++i) {
        const std::size_t K = cands[i].size();
        std::size_t chosen = K;
        for (std::size_t j = 0; j < K; ++j) {
          bool fits = true;
          for (std::uint32_t b = 0; b < cBits[i] && fits; ++b) {
            const std::int8_t lit = cube.lits[cVars[i][b]];
            const bool bit = (j >> (cBits[i] - 1 - b)) & 1;
            if (lit >= 0 && lit != static_cast<std::int8_t>(bit)) fits = false;
          }
          if (fits) {
            chosen = j;
            break;
          }
        }
        if (chosen == K) {
          ok = false;
          break;
        }
        choice.pick[i] = chosen;
        assignment = mgr.bAnd(
            assignment,
            mgr.mintermOf(static_cast<std::uint32_t>(chosen), cVars[i]));
      }
      rem = mgr.bAnd(rem, mgr.bNot(assignment));
      if (!ok) continue;
      // Cost: non-trivial picks, spec clones, and (optionally) depth.
      for (std::size_t i = 0; i < m; ++i) {
        const NetCandidate& c = cands[i][choice.pick[i]];
        const bool trivial =
            opt_.includeTrivialCandidate && choice.pick[i] == 0;
        if (!trivial) {
          // Expected patch growth: rewiring an existing W net is nearly
          // free; cloning spec logic costs its unmatched region, and a
          // synthesized function costs its fresh gates.
          choice.cost += 0.3 + static_cast<double>(c.cloneCost) / 6.0;
          choice.tieLevel += pins[ps[i]].driverLevel;
          if (opt_.levelDriven) {
            // Level-driven selection (Table 3): penalize rewiring nets that
            // arrive later than the pin's current driver - that rise
            // propagates down every path through the pin.
            const double rise = static_cast<double>(c.level) -
                                static_cast<double>(pins[ps[i]].driverLevel);
            if (rise > 0) choice.cost += rise * 0.3;
          }
        }
      }
      if (choice.cost == 0.0) continue;  // all-trivial cannot rectify
      choices.push_back(std::move(choice));
    }
    std::stable_sort(choices.begin(), choices.end(),
                     [](const RewireChoice& a, const RewireChoice& b) {
                       return a.cost < b.cost;
                     });
    if (choices.size() > opt_.maxChoices) choices.resize(opt_.maxChoices);
    (void)op;
    return choices;
  }

  // --- Application + validation (the CEGAR step, §5.2 step 5) --------------

  bool tryChoice(std::uint32_t o, std::uint32_t /*op*/,
                 const SimScreen& screen,
                 const std::vector<PinCandidate>& pins,
                 const std::vector<std::size_t>& ps,
                 const std::vector<std::vector<NetCandidate>>& cands,
                 const RewireChoice& choice, AttemptOutcome& outcome) {
    Netlist& w = working();
    const std::size_t mark = tracker().mark();
    std::vector<Sink> rewiredPins;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const NetCandidate& c = cands[i][choice.pick[i]];
      const bool trivial = opt_.includeTrivialCandidate && choice.pick[i] == 0;
      if (trivial) continue;
      const NetId target = c.fromSpec ? matchedClone(c.net) : c.net;
      for (const Sink& s : pins[ps[i]].sinks) {
        tracker().rewire(s, target);
        rewiredPins.push_back(s);
      }
    }
    if (rewiredPins.empty()) {
      tracker().rollback(mark);
      return false;
    }
    std::string why;
    if (!w.isWellFormed(&why)) {
      // A spec clone re-converged onto a rewired pin; reject this choice.
      tracker().rollback(mark);
      return false;
    }

    // Global quick screen: on the samples plus the random screen block, the
    // failing output must now match and no healthy output may break. This
    // kills most sampling-domain false positives without touching SAT; the
    // pattern that refuted the candidate feeds the refinement loop.
    Timer screenPhase;
    InputPattern screenCex;
    const bool screenOk =
        quickSimScreen(o, screen, rewiredPins, &screenCex);
    diag_.secondsScreening += screenPhase.seconds();
    if (!screenOk) {
      ++diag_.candidatesScreenRejected;
      if (opt_.verbose) std::fprintf(stderr, "[syseco]     screen reject\n");
      if (!screenCex.empty() && outcome.screenCounterexamples.size() < 8)
        outcome.screenCounterexamples.push_back(std::move(screenCex));
      tracker().rollback(mark);
      return false;
    }
    if (opt_.verbose)
      std::fprintf(stderr, "[syseco]     screen pass -> SAT validate\n");

    // A drained governor must not start the expensive SAT validation; the
    // candidate is rejected and the output degrades to the fallback.
    if (activeGuard_ != nullptr &&
        !activeGuard_->checkpoint("syseco.validation").isOk()) {
      outcome.limit = activeGuard_->trippedCode();
      tracker().rollback(mark);
      return false;
    }

    // Exact validation of every output the rewired pins can reach.
    Timer validatePhase;
    ++diag_.candidatesValidated;
    const std::vector<std::uint32_t> affected = affectedOutputs(rewiredPins, o);
    PairEncoding pe(w, spec_);
    pe.setResourceGuard(activeGuard_);
    for (std::uint32_t ao : affected) {
      const std::uint32_t aop = specOutput(ao);
      if (aop == kNullId) continue;
      const Solver::Result r =
          pe.solveDiffSwept(ao, aop, opt_.validationBudget, rng_);
      if (r == Solver::Result::Unsat) continue;
      if (r == Solver::Result::Sat) {
        outcome.counterexamples.push_back(pe.extractInputs(&rng_));
        ++diag_.candidatesRefuted;
      }
      tracker().rollback(mark);
      diag_.secondsValidation += validatePhase.seconds();
      return false;
    }
    diag_.secondsValidation += validatePhase.seconds();
    cloner_.reset();  // interior pins changed: matcher is stale
    return true;
  }

  /// Incremental screen: re-simulates only the choice's affected region
  /// (new clone/synthesis gates plus the forward closure of the rewired
  /// pins) against the cached base values, then compares the affected
  /// outputs with the spec. Exact, and orders of magnitude cheaper than a
  /// full-netlist pass per candidate.
  bool quickSimScreen(std::uint32_t o, const SimScreen& screen,
                      const std::vector<Sink>& rewiredPins,
                      InputPattern* failingPattern) {
    Netlist& w = working();
    const std::size_t words = screen.patterns.simWords();
    std::unordered_map<NetId, Signature> changed;

    // Affected gate subset: producers of every new net backing the rewires
    // (clone cones, synthesized functions) + forward closure of the pins.
    std::unordered_set<GateId> subset;
    {
      // Closure rule: every subset gate pulls in (a) the producers of its
      // new-net fanins (so clone/synthesis values exist, including leftover
      // fragments from rolled-back choices that are still connected) and
      // (b) its fanout gates (so changed values propagate). Seeds are the
      // new driver nets and the rewired sink gates.
      std::vector<GateId> work;
      auto addGate = [&](GateId g) {
        if (subset.insert(g).second) work.push_back(g);
      };
      for (const Sink& s : rewiredPins) {
        const NetId target = s.isOutput() ? w.outputNet(s.port)
                                          : w.gate(s.gate).fanins[s.port];
        if (target >= screen.baseNets) {
          const GateId d = w.driverOf(target);
          SYSECO_CHECK(d != kNullId);  // new nets are always gate outputs
          addGate(d);
        }
        if (!s.isOutput()) addGate(s.gate);
      }
      while (!work.empty()) {
        const GateId g = work.back();
        work.pop_back();
        for (NetId f : w.gate(g).fanins) {
          if (f >= screen.baseNets) {
            const GateId d = w.driverOf(f);
            SYSECO_CHECK(d != kNullId);
            addGate(d);
          }
        }
        for (const Sink& snk : w.net(w.gate(g).out).sinks) {
          if (!snk.isOutput()) addGate(snk.gate);
        }
      }
    }

    // Local topological order (Kahn restricted to the subset).
    std::vector<GateId> order;
    {
      std::unordered_map<GateId, std::uint32_t> pending;
      std::vector<GateId> ready;
      for (GateId g : subset) {
        std::uint32_t deps = 0;
        for (NetId f : w.gate(g).fanins) {
          const GateId d = w.driverOf(f);
          if (d != kNullId && subset.count(d)) ++deps;
        }
        pending[g] = deps;
        if (deps == 0) ready.push_back(g);
      }
      while (!ready.empty()) {
        const GateId g = ready.back();
        ready.pop_back();
        order.push_back(g);
        for (const Sink& snk : w.net(w.gate(g).out).sinks) {
          if (snk.isOutput() || !subset.count(snk.gate)) continue;
          if (--pending[snk.gate] == 0) ready.push_back(snk.gate);
        }
      }
      SYSECO_CHECK(order.size() == subset.size());
    }

    auto valueOf = [&](NetId n) -> const Signature& {
      if (const auto it = changed.find(n); it != changed.end())
        return it->second;
      SYSECO_CHECK(n < screen.baseNets);
      return screen.base->value(n);
    };
    std::vector<std::uint64_t> fanins(8);
    for (GateId g : order) {
      const auto& gate = w.gate(g);
      if (fanins.size() < gate.fanins.size())
        fanins.resize(gate.fanins.size());
      Signature out(words, 0);
      for (std::size_t wd = 0; wd < words; ++wd) {
        for (std::size_t i = 0; i < gate.fanins.size(); ++i)
          fanins[i] = valueOf(gate.fanins[i])[wd];
        out[wd] = evalGateWord(gate.type, fanins.data(), gate.fanins.size());
      }
      changed[gate.out] = std::move(out);
    }

    auto firstMismatch =
        [&](const std::vector<std::uint64_t>& mask) -> bool {
      const std::size_t k = [&] {
        for (std::size_t wd = 0; wd < mask.size(); ++wd)
          if (mask[wd] != 0)
            return wd * 64 +
                   static_cast<std::size_t>(std::countr_zero(mask[wd]));
        return std::size_t{0};
      }();
      if (failingPattern && k < screen.patterns.count())
        *failingPattern = screen.patterns.patterns()[k];
      return false;
    };

    // Only affected outputs can change; unaffected healthy outputs stay
    // proven-correct from the base state. The target output is affected by
    // construction (its cone contains the rewired pins).
    for (std::uint32_t oo = 0; oo < w.numOutputs(); ++oo) {
      const NetId on = w.outputNet(oo);
      const bool affected = changed.count(on) || on >= screen.baseNets;
      if (!affected) {
        // An unaffected target output would mean the rewire cannot have
        // fixed anything; reject defensively.
        if (oo == o) return false;
        continue;
      }
      if (oo != o && failingSet_.count(oo)) continue;  // still-broken peer
      if (screen.specOut[oo].empty()) continue;
      const auto mask =
          errorMask(valueOf(on), screen.specOut[oo], screen.patterns);
      if (countBits(mask) != 0) return firstMismatch(mask);
    }
    return true;
  }

  std::vector<std::uint32_t> affectedOutputs(const std::vector<Sink>& pins,
                                             std::uint32_t o) {
    Netlist& w = working();
    std::unordered_set<std::uint32_t> outs{o};
    for (const Sink& s : pins) {
      if (s.isOutput()) {
        outs.insert(s.port);
        continue;
      }
      std::unordered_set<GateId> seenGate;
      std::vector<NetId> stack{w.gate(s.gate).out};
      while (!stack.empty()) {
        const NetId n = stack.back();
        stack.pop_back();
        for (const Sink& snk : w.net(n).sinks) {
          if (snk.isOutput()) {
            outs.insert(snk.port);
          } else if (seenGate.insert(snk.gate).second) {
            stack.push_back(w.gate(snk.gate).out);
          }
        }
      }
    }
    std::vector<std::uint32_t> result(outs.begin(), outs.end());
    std::sort(result.begin(), result.end());
    // Validate the target output first: it is the most likely refuter.
    auto it = std::find(result.begin(), result.end(), o);
    if (it != result.end()) std::iter_swap(result.begin(), it);
    return result;
  }

  // --- Patch-input refinement through sweeping (§5.2) -----------------------

  void sweepPatch() {
    Netlist& w = working();
    // History-free randomness, mirroring the per-output reseeds: the sweep
    // must behave identically whether the run was uninterrupted or resumed.
    rng_.reseed(opt_.seed ^ 0x51eeb5feed5ULL);
    w.sweepDeadLogic();
    constexpr std::size_t kWords = 32;  // 2048 patterns
    Simulator sim(w, kWords);
    sim.randomizeInputs(rng_);
    sim.run();

    // Signature index over every live net: patch gates merge into
    // pre-existing logic when possible (the §5.2 reuse sweep), and into
    // earlier patch logic otherwise (cross-output patch sharing).
    std::unordered_map<std::uint64_t, std::vector<NetId>> bySig;
    auto hashSig = [](const Signature& s) {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (std::uint64_t x : s) h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6);
      return h;
    };
    for (NetId n = 0; n < w.numNetsTotal(); ++n) {
      const auto& net = w.net(n);
      const bool liveDriven =
          net.srcKind == Netlist::SourceKind::Input ||
          (net.srcKind == Netlist::SourceKind::Gate &&
           !w.gate(net.srcIdx).dead);
      if (!liveDriven) continue;
      bySig[hashSig(sim.value(n))].push_back(n);
    }
    // Prefer absorbing into pre-existing nets.
    for (auto& [hash, nets] : bySig) {
      (void)hash;
      std::stable_sort(nets.begin(), nets.end(), [&](NetId a, NetId b) {
        return tracker().isOriginalNet(a) > tracker().isOriginalNet(b);
      });
    }

    const std::vector<std::uint32_t> sweepLevels =
        opt_.levelDriven ? w.netLevels() : std::vector<std::uint32_t>{};
    for (GateId g : w.topoOrder()) {
      const auto& gate = w.gate(g);
      const NetId added = gate.out;
      if (tracker().isOriginalNet(added) || gate.dead) continue;
      if (w.net(added).sinks.empty()) continue;
      const auto it = bySig.find(hashSig(sim.value(added)));
      if (it == bySig.end()) continue;
      for (NetId orig : it->second) {
        if (orig == added) continue;
        // In timing mode, never trade depth for area.
        if (opt_.levelDriven && sweepLevels[orig] > sweepLevels[added])
          continue;
        // Never merge into a net that has already been swept empty.
        if (!tracker().isOriginalNet(orig) && w.net(orig).sinks.empty())
          continue;
        if (sim.value(orig) != sim.value(added)) continue;
        // Cycle safety: the original net must not depend on the added one.
        if (reachableNets(w, added).count(orig)) continue;
        if (checkNetsEquiv(w, added, orig, false, opt_.validationBudget) !=
            Solver::Result::Unsat)
          continue;
        const std::vector<Sink> sinks = w.net(added).sinks;  // copy
        for (const Sink& s : sinks) tracker().rewire(s, orig);
        ++diag_.sweepMerges;
        break;
      }
    }
    const bool minimize =
        opt_.minimizePatch == PatchMinimize::kOn ||
        (opt_.minimizePatch == PatchMinimize::kAuto &&
         opt_.bddReorder != BddReorder::kOff);
    if (minimize) minimizePatchLogic();
    w.sweepDeadLogic();
  }

  // --- ISOP patch minimization ----------------------------------------------
  // Rewrites multi-level added patch cones as irredundant two-level AND-OR
  // covers (Minato-Morreale, the same isop primitive that seeds §4.2's
  // prime cubes) when the cover is strictly smaller. Rewire-based patches
  // accrete shape from whichever candidates validated first; the exact
  // cover forgets that history. Every rewrite is SAT-confirmed before the
  // sinks move, so this changes patch *shape*, never function.

  void minimizePatchLogic() {
    Netlist& w = working();
    constexpr std::size_t kMaxLeaves = 12;    // BDD stays trivially small
    constexpr std::size_t kMaxConeGates = 64;

    // Boundary roots: added nets feeding original logic or outputs.
    // Snapshot first - the rebuild below adds gates while we iterate. The
    // topo index doubles as the fanin-first evaluation order inside each
    // cone (DFS preorder reversed is NOT topological under reconvergence).
    std::vector<NetId> roots;
    std::unordered_map<GateId, std::size_t> topoIdx;
    for (GateId g : w.topoOrder()) {
      topoIdx.emplace(g, topoIdx.size());
      const auto& gate = w.gate(g);
      if (gate.dead || tracker().isOriginalNet(gate.out)) continue;
      bool boundary = false;
      for (const Sink& s : w.net(gate.out).sinks)
        boundary |= s.isOutput() || tracker().isOriginalNet(w.gate(s.gate).out);
      if (boundary) roots.push_back(gate.out);
    }

    for (NetId root : roots) {
      // Collect the added-gate cone under `root`; leaves are original nets
      // or primary inputs. DFS order then sort gives a deterministic
      // variable order regardless of container layout.
      std::vector<GateId> coneGates;
      std::unordered_set<GateId> coneSet;
      std::vector<NetId> leaves;
      std::unordered_set<NetId> leafSet;
      bool viable = true;
      std::vector<NetId> stack{root};
      std::unordered_set<NetId> visited{root};
      while (!stack.empty() && viable) {
        const NetId n = stack.back();
        stack.pop_back();
        const auto& net = w.net(n);
        const bool original = tracker().isOriginalNet(n) ||
                              net.srcKind == Netlist::SourceKind::Input;
        if (original) {
          if (leafSet.insert(n).second) leaves.push_back(n);
          viable = leaves.size() <= kMaxLeaves;
          continue;
        }
        SYSECO_CHECK(net.srcKind == Netlist::SourceKind::Gate);
        const GateId g = net.srcIdx;
        // Gates added by an earlier rebuild in this loop have no topo
        // index; their cones were already minimal, so skip.
        if (!topoIdx.count(g)) {
          viable = false;
          continue;
        }
        if (!coneSet.insert(g).second) continue;
        coneGates.push_back(g);
        viable = coneGates.size() <= kMaxConeGates;
        for (NetId f : w.gate(g).fanins)
          if (visited.insert(f).second) stack.push_back(f);
      }
      if (!viable || coneGates.size() < 2) continue;
      // The gate-count comparison assumes the whole cone dies with the
      // root; an interior gate with sinks outside the cone survives the
      // rewrite, so skip cones that share logic with the rest of the
      // netlist (the reuse sweep above deliberately creates such shares).
      bool shared = false;
      for (GateId g : coneGates) {
        const NetId out = w.gate(g).out;
        if (out == root) continue;
        for (const Sink& s : w.net(out).sinks)
          shared |= s.isOutput() || !coneSet.count(s.gate);
      }
      if (shared) continue;

      std::sort(leaves.begin(), leaves.end());
      std::unordered_map<NetId, std::uint32_t> varOf;
      for (std::uint32_t v = 0; v < leaves.size(); ++v)
        varOf.emplace(leaves[v], v);

      std::vector<BddCube> cover;
      try {
        // Exact function of the cone. Tiny support, so no reordering and a
        // tight node limit; an overflow just skips this cone.
        BddConfig cfg;
        cfg.nodeLimit = 1u << 16;
        Bdd mgr(static_cast<std::uint32_t>(leaves.size()), cfg);
        std::unordered_map<NetId, Bdd::Ref> val;
        for (auto [net, v] : varOf) val.emplace(net, mgr.var(v));
        // Fanin-first evaluation: sort the cone by global topo index.
        std::sort(coneGates.begin(), coneGates.end(),
                  [&](GateId a, GateId b) {
                    return topoIdx.at(a) < topoIdx.at(b);
                  });
        for (GateId cg : coneGates) {
          const auto& gate = w.gate(cg);
          std::vector<Bdd::Ref> in;
          in.reserve(gate.fanins.size());
          for (NetId f : gate.fanins) in.push_back(val.at(f));
          Bdd::ScopedRef r(mgr, Bdd::kFalse);
          switch (gate.type) {
            case GateType::Const0: r = Bdd::kFalse; break;
            case GateType::Const1: r = Bdd::kTrue; break;
            case GateType::Buf: r = in[0]; break;
            case GateType::Not: r = mgr.bNot(in[0]); break;
            case GateType::And: r = mgr.andMany(in); break;
            case GateType::Nand:
              r = mgr.andMany(in);
              r = mgr.bNot(r);
              break;
            case GateType::Or: r = mgr.orMany(in); break;
            case GateType::Nor:
              r = mgr.orMany(in);
              r = mgr.bNot(r);
              break;
            case GateType::Xor:
            case GateType::Xnor: {
              r = in[0];
              for (std::size_t k = 1; k < in.size(); ++k)
                r = mgr.bXor(r, in[k]);
              if (gate.type == GateType::Xnor) r = mgr.bNot(r);
              break;
            }
            case GateType::Mux: r = mgr.ite(in[0], in[2], in[1]); break;
          }
          val[gate.out] = r;
        }
        cover = mgr.isop(val.at(root));
      } catch (const BddLimitExceeded&) {
        continue;
      }

      // Two-level cost: one shared NOT per negated leaf, one AND per
      // multi-literal cube, one OR to collect. Rebuild only on a strict
      // win (dead-cone removal is the final sweep's job).
      std::unordered_set<std::uint32_t> negated;
      std::size_t ands = 0;
      for (const BddCube& cube : cover) {
        std::size_t lits = 0;
        for (std::uint32_t v = 0; v < leaves.size(); ++v) {
          if (cube.lits[v] < 0) continue;
          ++lits;
          if (cube.lits[v] == 0) negated.insert(v);
        }
        if (lits != 1) ++ands;  // empty cube becomes a Const1 gate
      }
      const std::size_t cost =
          negated.size() + ands + (cover.size() == 1 ? 0 : 1);
      if (cost >= coneGates.size()) continue;

      // Instantiate the cover, mirroring the exact-fix synthesis shape.
      std::unordered_map<std::uint32_t, NetId> invOf;
      std::vector<NetId> terms;
      for (const BddCube& cube : cover) {
        std::vector<NetId> lits;
        for (std::uint32_t v = 0; v < leaves.size(); ++v) {
          if (cube.lits[v] < 0) continue;
          if (cube.lits[v] == 1) {
            lits.push_back(leaves[v]);
          } else {
            auto it = invOf.find(v);
            if (it == invOf.end())
              it = invOf.emplace(v, w.addGate(GateType::Not, {leaves[v]}))
                       .first;
            lits.push_back(it->second);
          }
        }
        if (lits.empty()) {
          terms.push_back(w.addGate(GateType::Const1, {}));
        } else if (lits.size() == 1) {
          terms.push_back(lits[0]);
        } else {
          terms.push_back(w.addGate(GateType::And, lits));
        }
      }
      NetId rebuilt;
      if (terms.empty()) {
        rebuilt = w.addGate(GateType::Const0, {});
      } else if (terms.size() == 1) {
        rebuilt = terms[0];
      } else {
        rebuilt = w.addGate(GateType::Or, terms);
      }
      // The BDD is exact, but confirm anyway before moving sinks: an
      // Unknown (budget) or a latent bug leaves the rebuilt logic dead for
      // the final sweep instead of corrupting the patch.
      if (rebuilt == root ||
          checkNetsEquiv(w, root, rebuilt, false, opt_.validationBudget) !=
              Solver::Result::Unsat)
        continue;
      const std::vector<Sink> sinks = w.net(root).sinks;  // copy
      for (const Sink& s : sinks) tracker().rewire(s, rebuilt);
      ++diag_.isopRewrites;
      diag_.isopGatesSaved += coneGates.size() - cost;
    }
  }

  const Netlist& spec_;
  SysecoOptions opt_;
  SysecoDiagnostics& diag_;
  Rng rng_;
  ResourceGuard rootGuard_;
  EcoResult result_;
  std::optional<PatchTracker> trackerStore_;
  PatchTracker* tracker_ = nullptr;
  // Immutable shared structural analyses: the canonical engine owns them;
  // worker engines borrow pointers (setSharedAnalyses).
  std::unique_ptr<NetlistAnalysis> ownedBaseAnalysis_;
  std::unique_ptr<NetlistAnalysis> ownedSpecAnalysis_;
  const NetlistAnalysis* baseAnalysis_ = nullptr;
  const NetlistAnalysis* specAnalysis_ = nullptr;
  // Speculative-commit accounting: charges from commit-time checks and
  // redo runs, which deliberately run outside rootGuard_ (worker guards are
  // unlimited and unparented - they never touch the canonical governor).
  std::int64_t extraConflicts_ = 0;
  std::int64_t extraBddNodes_ = 0;
  // Gate/net counts of the shared base snapshot (the worker id remap base).
  std::size_t commitBaseGates_ = 0;
  std::size_t commitBaseNets_ = 0;
  std::unordered_set<std::uint32_t> failingSet_;
  std::vector<std::uint32_t> cloneCostDp_;
  std::unique_ptr<MatchedSpecCloner> cloner_;
  // Resource-governor state for the output currently being rectified.
  ResourceGuard* activeGuard_ = nullptr;
  int degradeSteps_ = 0;
  std::size_t effMaxPointSets_ = 0;
  // Journal-resume accounting: totals adopted from the journal (reported
  // on top of this process's own rootGuard_ charges) and the size of the
  // full processing plan (for checkpoint progress records).
  std::int64_t restoredConflicts_ = 0;
  std::int64_t restoredBddNodes_ = 0;
  std::size_t plannedOutputs_ = 0;
};

}  // namespace

Status validateSysecoOptions(const SysecoOptions& o) {
  const auto invalid = [](const std::string& msg) {
    return Status::invalidInput("syseco options: " + msg);
  };
  if (o.numSamples == 0) return invalid("numSamples must be positive");
  if (o.maxPoints <= 0) return invalid("maxPoints must be positive");
  if (o.maxCandidatePins == 0)
    return invalid("maxCandidatePins must be positive");
  if (o.maxRewireNets == 0) return invalid("maxRewireNets must be positive");
  if (o.maxPointSets == 0) return invalid("maxPointSets must be positive");
  if (o.maxChoices == 0) return invalid("maxChoices must be positive");
  if (o.maxRefineIters < 0)
    return invalid("maxRefineIters must be non-negative");
  if (o.jobs == 0) return invalid("jobs must be positive");
  if (o.validationBudget <= 0)
    return invalid("validationBudget must be positive");
  if (o.samplingBudget <= 0) return invalid("samplingBudget must be positive");
  if (o.bddNodeLimit == 0) return invalid("bddNodeLimit must be positive");
  if (o.deadlineSeconds < 0.0)
    return invalid("deadlineSeconds must be non-negative");
  if (o.totalConflictBudget < 0)
    return invalid("totalConflictBudget must be non-negative");
  if (o.totalBddNodeBudget < 0)
    return invalid("totalBddNodeBudget must be non-negative");
  if (o.isolateMaxAttempts <= 0)
    return invalid("isolateMaxAttempts must be positive");
  if (o.isolateWallSeconds < 0.0)
    return invalid("isolateWallSeconds must be non-negative");
  if (o.isolateCpuSeconds < 0.0)
    return invalid("isolateCpuSeconds must be non-negative");
  if (o.isolateBackoffMs < 0.0)
    return invalid("isolateBackoffMs must be non-negative");
  if (o.bddCacheBits > 28)
    return invalid("bddCacheBits must be at most 28 (2^28 cache entries)");
  if (o.oracle.bddCacheBits > 28)
    return invalid("oracle.bddCacheBits must be at most 28");
  if (o.oracle.simWords == 0) return invalid("oracle.simWords must be positive");
  if (o.oracle.bddNodeBudget == 0)
    return invalid("oracle.bddNodeBudget must be positive");
  if (o.oracle.satConflictBudget != -1 && o.oracle.satConflictBudget <= 0)
    return invalid("oracle.satConflictBudget must be -1 (unbounded) or positive");
  if (!o.workers.empty() && o.isolate)
    return invalid("workers and isolate are mutually exclusive transports");
  if (o.fleetLeaseSeconds <= 0.0)
    return invalid("fleetLeaseSeconds must be positive");
  if (o.fleetConnectTimeoutMs <= 0)
    return invalid("fleetConnectTimeoutMs must be positive");
  if (o.fleetMinWorkers <= 0) return invalid("fleetMinWorkers must be positive");
  for (const std::string& spec : o.workers) {
    Result<std::pair<std::string, std::uint16_t>> hp = net::parseHostPort(spec);
    if (!hp.isOk())
      return invalid("bad worker endpoint '" + spec + "': " +
                     hp.status().message());
  }
  return Status::ok();
}

EcoResult runSyseco(const Netlist& impl, const Netlist& spec,
                    const SysecoOptions& options,
                    SysecoDiagnostics* diagnostics) {
  const Status valid = validateSysecoOptions(options);
  if (!valid.isOk()) throw StatusError(valid);
  SysecoDiagnostics local;
  Engine engine(impl, spec, options, diagnostics ? *diagnostics : local);
  return engine.run();
}

Result<EcoResult> runSysecoChecked(const Netlist& impl, const Netlist& spec,
                                   const SysecoOptions& options,
                                   SysecoDiagnostics* diagnostics) {
  const Status valid = validateSysecoOptions(options);
  if (!valid.isOk()) return valid;
  SysecoDiagnostics local;
  Engine engine(impl, spec, options, diagnostics ? *diagnostics : local);
  return engine.run();
}

Result<WorkerPatch> runFleetTask(const Netlist& base, const Netlist& spec,
                                 const SysecoOptions& options,
                                 std::uint32_t output,
                                 const std::vector<std::uint32_t>& protect,
                                 const NetlistAnalysis* baseAnalysis,
                                 const NetlistAnalysis* specAnalysis) {
  return Engine::computeTask(base, spec, options, output, protect,
                             baseAnalysis, specAnalysis);
}

}  // namespace syseco
