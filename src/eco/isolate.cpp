#include "eco/isolate.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "io/journal_io.hpp"
#include "util/ipc.hpp"
#include "util/journal.hpp"

namespace syseco {

namespace {

// Sanity ceilings for unbounded-looking counters arriving over IPC. Far
// above anything a real worker produces; their only job is to keep a
// corrupted frame from smuggling absurd values into run accounting.
constexpr std::int64_t kMaxSmallCount = 1000000;

/// Field readers, mirroring journal_io's record extraction: false means
/// "absent or wrong type/range" and the caller rejects the whole message.
bool getU64(const JsonValue& obj, const std::string& key, std::uint64_t* out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::Number || !v->isInteger ||
      v->integer < 0)
    return false;
  *out = static_cast<std::uint64_t>(v->integer);
  return true;
}

bool getU32(const JsonValue& obj, const std::string& key, std::uint32_t* out) {
  std::uint64_t wide = 0;
  if (!getU64(obj, key, &wide) || wide > 0xFFFFFFFFull) return false;
  *out = static_cast<std::uint32_t>(wide);
  return true;
}

bool getI64(const JsonValue& obj, const std::string& key, std::int64_t* out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::Number || !v->isInteger) return false;
  *out = v->integer;
  return true;
}

bool getDouble(const JsonValue& obj, const std::string& key, double* out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::Number ||
      !std::isfinite(v->number))
    return false;
  *out = v->number;
  return true;
}

bool getString(const JsonValue& obj, const std::string& key,
               std::string* out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::String) return false;
  *out = v->str;
  return true;
}

bool getBool(const JsonValue& obj, const std::string& key, bool* out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::Bool) return false;
  *out = v->boolean;
  return true;
}

/// Array element as an exact u32 (kNullId allowed when `allowNull`).
bool elemU32(const JsonValue& e, std::uint32_t* out) {
  if (e.kind != JsonValue::Kind::Number || !e.isInteger || e.integer < 0 ||
      e.integer > 0xFFFFFFFFll)
    return false;
  *out = static_cast<std::uint32_t>(e.integer);
  return true;
}

std::optional<OutputRectStatus> rectStatusFromName(std::string_view name) {
  for (OutputRectStatus s :
       {OutputRectStatus::kExact, OutputRectStatus::kDegraded,
        OutputRectStatus::kFallback}) {
    if (name == outputRectStatusName(s)) return s;
  }
  return std::nullopt;
}

std::optional<StatusCode> statusCodeFromName(std::string_view name) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kBudgetExhausted,
        StatusCode::kDeadlineExceeded, StatusCode::kInvalidInput,
        StatusCode::kInternal}) {
    if (name == statusCodeName(c)) return c;
  }
  return std::nullopt;
}

void serializeReportInto(std::ostringstream& os, const OutputReport& r) {
  os << "{\"output\":" << r.output << ",\"name\":\"" << jsonEscape(r.name)
     << "\",\"status\":\"" << outputRectStatusName(r.status)
     << "\",\"limit\":\"" << statusCodeName(r.limit)
     << "\",\"conflicts_used\":" << r.conflictsUsed
     << ",\"bdd_nodes_used\":" << r.bddNodesUsed << ",\"seconds\":"
     << r.seconds << ",\"degrade_steps\":" << r.degradeSteps
     << ",\"attempts\":" << r.workerFailedAttempts << ",\"exit_cause\":\""
     << workerExitCauseName(r.workerExitCause) << "\"}";
}

bool parseReport(const JsonValue& v, const Netlist& base, OutputReport* out) {
  if (v.kind != JsonValue::Kind::Object) return false;
  std::string status, limit, exitCause;
  std::int64_t degradeSteps = 0, attempts = 0;
  if (!(getU32(v, "output", &out->output) && getString(v, "name", &out->name) &&
        getString(v, "status", &status) && getString(v, "limit", &limit) &&
        getI64(v, "conflicts_used", &out->conflictsUsed) &&
        getI64(v, "bdd_nodes_used", &out->bddNodesUsed) &&
        getDouble(v, "seconds", &out->seconds) &&
        getI64(v, "degrade_steps", &degradeSteps) &&
        getI64(v, "attempts", &attempts) &&
        getString(v, "exit_cause", &exitCause)))
    return false;
  const auto st = rectStatusFromName(status);
  const auto lim = statusCodeFromName(limit);
  const auto cause = workerExitCauseFromName(exitCause);
  if (!st || !lim || !cause) return false;
  if (out->output >= base.numOutputs()) return false;
  if (out->name != base.outputName(out->output)) return false;
  if (out->conflictsUsed < 0 || out->bddNodesUsed < 0) return false;
  if (out->seconds < 0.0) return false;
  if (degradeSteps < 0 || degradeSteps > kMaxSmallCount) return false;
  if (attempts < 0 || attempts > kMaxSmallCount) return false;
  out->status = *st;
  out->limit = *lim;
  out->degradeSteps = static_cast<int>(degradeSteps);
  out->workerFailedAttempts = static_cast<int>(attempts);
  out->workerExitCause = *cause;
  return true;
}

Status bad(const std::string& what) {
  return Status::invalidInput("worker patch: " + what);
}

}  // namespace

std::string encodeTaskRequest(const IsolateTaskRequest& req) {
  std::ostringstream os;
  os << "{\"output\":" << req.output << ",\"attempt\":" << req.attempt << "}";
  return os.str();
}

Result<IsolateTaskRequest> decodeTaskRequest(std::string_view payload) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  const JsonValue& v = parsed.value();
  IsolateTaskRequest req;
  if (!getU32(v, "output", &req.output) ||
      !getI64(v, "attempt", &req.attempt) || req.attempt < 1 ||
      req.attempt > kMaxSmallCount)
    return Status::invalidInput("task request: malformed fields");
  return req;
}

std::string encodeWorkerPatch(const WorkerPatch& patch) {
  std::ostringstream os;
  // max_digits10: phase seconds must survive the round trip bit-exactly so
  // isolated-run diagnostics match the in-process speculative mode.
  os << std::setprecision(17);
  os << "{\"produced\":" << (patch.produced ? "true" : "false")
     << ",\"base_gates\":" << patch.baseGates
     << ",\"base_nets\":" << patch.baseNets << ",\"gates\":[";
  for (std::size_t i = 0; i < patch.gates.size(); ++i) {
    const WorkerPatch::NewGate& g = patch.gates[i];
    os << (i ? "," : "") << "[" << static_cast<unsigned>(g.type) << ","
       << g.out;
    for (NetId f : g.fanins) os << "," << f;
    os << "]";
  }
  os << "],\"rewires\":[";
  for (std::size_t i = 0; i < patch.rewires.size(); ++i) {
    const PatchTracker::RewireRecord& r = patch.rewires[i];
    os << (i ? "," : "") << "[" << r.sink.gate << "," << r.sink.port << ","
       << r.oldNet << "," << r.newNet << "]";
  }
  os << "],\"counters\":[" << patch.frag.outputsRectified << ","
     << patch.frag.outputsViaRewire << "," << patch.frag.outputsViaFallback
     << "," << patch.frag.candidatesValidated << ","
     << patch.frag.candidatesRefuted << ","
     << patch.frag.candidatesScreenRejected << ","
     << patch.frag.refinementRounds << "],\"seconds\":["
     << patch.frag.secondsSampling << "," << patch.frag.secondsSymbolic << ","
     << patch.frag.secondsScreening << "," << patch.frag.secondsValidation
     << "," << patch.frag.secondsFallback << "]";
  if (patch.produced && !patch.frag.outputs.empty()) {
    os << ",\"report\":";
    serializeReportInto(os, patch.frag.outputs.back());
  }
  os << "}";
  return os.str();
}

Result<WorkerPatch> decodeWorkerPatch(std::string_view payload,
                                      const Netlist& base) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  const JsonValue& v = parsed.value();
  if (v.kind != JsonValue::Kind::Object) return bad("not an object");

  WorkerPatch patch;
  if (!getBool(v, "produced", &patch.produced) ||
      !getU64(v, "base_gates", &patch.baseGates) ||
      !getU64(v, "base_nets", &patch.baseNets))
    return bad("malformed envelope");
  if (patch.baseGates != base.numGatesTotal() ||
      patch.baseNets != base.numNetsTotal())
    return bad("base snapshot counts disagree with the supervisor's");

  const JsonValue* gates = v.find("gates");
  if (!gates || gates->kind != JsonValue::Kind::Array)
    return bad("missing gates array");
  if (gates->items.size() > static_cast<std::size_t>(kMaxSmallCount))
    return bad("absurd gate count");
  patch.gates.reserve(gates->items.size());
  for (std::size_t i = 0; i < gates->items.size(); ++i) {
    const JsonValue& item = gates->items[i];
    if (item.kind != JsonValue::Kind::Array || item.items.size() < 2)
      return bad("malformed gate entry");
    std::uint32_t typeRaw = 0, out = 0;
    if (!elemU32(item.items[0], &typeRaw) || !elemU32(item.items[1], &out))
      return bad("malformed gate entry");
    if (typeRaw > static_cast<std::uint32_t>(GateType::Mux))
      return bad("unknown gate type");
    WorkerPatch::NewGate g;
    g.type = static_cast<GateType>(typeRaw);
    // addGate creates exactly one net per gate, so appended gate i must
    // drive net baseNets+i - the invariant the commit-time remap relies on.
    if (out != patch.baseNets + i) return bad("gate output id out of order");
    g.out = out;
    g.fanins.reserve(item.items.size() - 2);
    for (std::size_t f = 2; f < item.items.size(); ++f) {
      std::uint32_t fanin = 0;
      if (!elemU32(item.items[f], &fanin)) return bad("malformed gate fanin");
      // Strictly older nets only: keeps the replayed patch acyclic and
      // every remapped fanin id in range.
      if (fanin >= out) return bad("gate fanin from the future");
      g.fanins.push_back(fanin);
    }
    const std::uint8_t arity = gateArity(g.type);
    const bool arityOk = arity == 0xFF ? !g.fanins.empty()
                                       : g.fanins.size() == arity;
    if (!arityOk) return bad("gate fanin arity mismatch");
    patch.gates.push_back(std::move(g));
  }
  const std::uint64_t totalGates = patch.baseGates + patch.gates.size();
  const std::uint64_t totalNets = patch.baseNets + patch.gates.size();

  const JsonValue* rewires = v.find("rewires");
  if (!rewires || rewires->kind != JsonValue::Kind::Array)
    return bad("missing rewires array");
  if (rewires->items.size() > static_cast<std::size_t>(kMaxSmallCount))
    return bad("absurd rewire count");
  patch.rewires.reserve(rewires->items.size());
  for (const JsonValue& item : rewires->items) {
    if (item.kind != JsonValue::Kind::Array || item.items.size() != 4)
      return bad("malformed rewire entry");
    std::uint32_t f[4];
    for (int i = 0; i < 4; ++i)
      if (!elemU32(item.items[static_cast<std::size_t>(i)], &f[i]))
        return bad("malformed rewire entry");
    PatchTracker::RewireRecord r{Sink{f[0], f[1]}, f[2], f[3]};
    if (r.oldNet >= totalNets || r.newNet >= totalNets)
      return bad("rewire net id out of range");
    if (r.sink.isOutput()) {
      if (r.sink.port >= base.numOutputs())
        return bad("rewire output index out of range");
    } else {
      if (r.sink.gate >= totalGates) return bad("rewire gate id out of range");
      const std::size_t faninCount =
          r.sink.gate < patch.baseGates
              ? base.gate(r.sink.gate).fanins.size()
              : patch.gates[r.sink.gate - patch.baseGates].fanins.size();
      if (r.sink.port >= faninCount) return bad("rewire port out of range");
    }
    patch.rewires.push_back(r);
  }

  const JsonValue* counters = v.find("counters");
  if (!counters || counters->kind != JsonValue::Kind::Array ||
      counters->items.size() != 7)
    return bad("malformed counters");
  std::uint64_t c[7];
  for (int i = 0; i < 7; ++i) {
    const JsonValue& e = counters->items[static_cast<std::size_t>(i)];
    if (e.kind != JsonValue::Kind::Number || !e.isInteger || e.integer < 0)
      return bad("malformed counters");
    c[i] = static_cast<std::uint64_t>(e.integer);
  }
  patch.frag.outputsRectified = c[0];
  patch.frag.outputsViaRewire = c[1];
  patch.frag.outputsViaFallback = c[2];
  patch.frag.candidatesValidated = c[3];
  patch.frag.candidatesRefuted = c[4];
  patch.frag.candidatesScreenRejected = c[5];
  patch.frag.refinementRounds = c[6];

  const JsonValue* seconds = v.find("seconds");
  if (!seconds || seconds->kind != JsonValue::Kind::Array ||
      seconds->items.size() != 5)
    return bad("malformed seconds");
  double s[5];
  for (int i = 0; i < 5; ++i) {
    const JsonValue& e = seconds->items[static_cast<std::size_t>(i)];
    if (e.kind != JsonValue::Kind::Number || !std::isfinite(e.number) ||
        e.number < 0.0)
      return bad("malformed seconds");
    s[i] = e.number;
  }
  patch.frag.secondsSampling = s[0];
  patch.frag.secondsSymbolic = s[1];
  patch.frag.secondsScreening = s[2];
  patch.frag.secondsValidation = s[3];
  patch.frag.secondsFallback = s[4];

  if (patch.produced) {
    const JsonValue* report = v.find("report");
    OutputReport r;
    if (!report || !parseReport(*report, base, &r))
      return bad("malformed report");
    patch.frag.outputs.push_back(std::move(r));
  }
  return patch;
}

// --- Fleet transport payloads ---------------------------------------------

namespace {

Status badFleet(const std::string& what) {
  return Status::invalidInput("fleet payload: " + what);
}

/// uint64 carried as a decimal string: the journal idiom for values (seed,
/// epoch) that may not fit a JSON int64.
void putU64String(std::ostringstream& os, std::uint64_t v) {
  os << '"' << v << '"';
}

bool getU64String(const JsonValue& obj, const std::string& key,
                  std::uint64_t* out) {
  std::string text;
  if (!getString(obj, key, &text) || text.empty() || text.size() > 20)
    return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (0xFFFFFFFFFFFFFFFFull - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

std::string encodeFleetTaskRequest(const FleetTaskRequest& req) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"output\":" << req.output << ",\"attempt\":" << req.attempt
     << ",\"epoch\":";
  putU64String(os, req.epoch);
  os << ",\"lease_seconds\":" << req.leaseSeconds
     << ",\"case_crc\":" << req.caseCrc << "}";
  return os.str();
}

Result<FleetTaskRequest> decodeFleetTaskRequest(std::string_view payload) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  const JsonValue& v = parsed.value();
  if (v.kind != JsonValue::Kind::Object) return badFleet("not an object");
  FleetTaskRequest req;
  if (!getU32(v, "output", &req.output) ||
      !getI64(v, "attempt", &req.attempt) || req.attempt < 1 ||
      req.attempt > kMaxSmallCount ||
      !getU64String(v, "epoch", &req.epoch) ||
      !getDouble(v, "lease_seconds", &req.leaseSeconds) ||
      req.leaseSeconds <= 0.0 || !getU32(v, "case_crc", &req.caseCrc))
    return badFleet("malformed task request");
  return req;
}

std::string encodeFleetCase(const Netlist& base, const Netlist& spec,
                            const SysecoOptions& options,
                            const std::vector<std::uint32_t>& protect) {
  std::ostringstream os;
  os << "{\"impl\":\"" << jsonEscape(base.dumpRawString()) << "\",\"spec\":\""
     << jsonEscape(spec.dumpRawString()) << "\",\"options\":{"
     << "\"samples\":" << options.numSamples
     << ",\"points\":" << options.maxPoints
     << ",\"pins\":" << options.maxCandidatePins
     << ",\"nets\":" << options.maxRewireNets
     << ",\"sets\":" << options.maxPointSets
     << ",\"choices\":" << options.maxChoices
     << ",\"refine\":" << options.maxRefineIters
     << ",\"vbudget\":" << options.validationBudget
     << ",\"sbudget\":" << options.samplingBudget
     << ",\"bddlimit\":" << options.bddNodeLimit
     << ",\"errsample\":" << (options.useErrorDomainSampling ? "true" : "false")
     << ",\"utility\":" << (options.useUtilityHeuristic ? "true" : "false")
     << ",\"trivial\":" << (options.includeTrivialCandidate ? "true" : "false")
     << ",\"sweep\":" << (options.enableSweeping ? "true" : "false")
     << ",\"synth\":" << (options.synthesizeFunctions ? "true" : "false")
     << ",\"level\":" << (options.levelDriven ? "true" : "false")
     << ",\"seed\":";
  putU64String(os, options.seed);
  os << "},\"protect\":[";
  for (std::size_t i = 0; i < protect.size(); ++i)
    os << (i ? "," : "") << protect[i];
  os << "]}";
  return os.str();
}

Result<FleetCase> decodeFleetCase(std::string_view payload) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  const JsonValue& v = parsed.value();
  if (v.kind != JsonValue::Kind::Object) return badFleet("not an object");

  std::string implDump, specDump;
  if (!getString(v, "impl", &implDump) || !getString(v, "spec", &specDump))
    return badFleet("missing netlist snapshots");
  Result<Netlist> base = Netlist::restoreRawString(implDump);
  if (!base.isOk())
    return badFleet("impl snapshot: " + base.status().message());
  Result<Netlist> spec = Netlist::restoreRawString(specDump);
  if (!spec.isOk())
    return badFleet("spec snapshot: " + spec.status().message());

  const JsonValue* opts = v.find("options");
  if (!opts || opts->kind != JsonValue::Kind::Object)
    return badFleet("missing options");
  FleetCase out;
  SysecoOptions& o = out.options;
  std::uint64_t samples = 0, pins = 0, nets = 0, sets = 0, choices = 0,
                bddLimit = 0;
  std::int64_t points = 0, refine = 0;
  if (!(getU64(*opts, "samples", &samples) &&
        getI64(*opts, "points", &points) && getU64(*opts, "pins", &pins) &&
        getU64(*opts, "nets", &nets) && getU64(*opts, "sets", &sets) &&
        getU64(*opts, "choices", &choices) &&
        getI64(*opts, "refine", &refine) &&
        getI64(*opts, "vbudget", &o.validationBudget) &&
        getI64(*opts, "sbudget", &o.samplingBudget) &&
        getU64(*opts, "bddlimit", &bddLimit) &&
        getBool(*opts, "errsample", &o.useErrorDomainSampling) &&
        getBool(*opts, "utility", &o.useUtilityHeuristic) &&
        getBool(*opts, "trivial", &o.includeTrivialCandidate) &&
        getBool(*opts, "sweep", &o.enableSweeping) &&
        getBool(*opts, "synth", &o.synthesizeFunctions) &&
        getBool(*opts, "level", &o.levelDriven) &&
        getU64String(*opts, "seed", &o.seed)))
    return badFleet("malformed options");
  if (points < 1 || points > kMaxSmallCount || refine < 0 ||
      refine > kMaxSmallCount)
    return badFleet("malformed options");
  o.numSamples = static_cast<std::size_t>(samples);
  o.maxPoints = static_cast<int>(points);
  o.maxCandidatePins = static_cast<std::size_t>(pins);
  o.maxRewireNets = static_cast<std::size_t>(nets);
  o.maxPointSets = static_cast<std::size_t>(sets);
  o.maxChoices = static_cast<std::size_t>(choices);
  o.maxRefineIters = static_cast<int>(refine);
  o.bddNodeLimit = static_cast<std::size_t>(bddLimit);
  if (const Status s = validateSysecoOptions(o); !s.isOk())
    return badFleet("options rejected: " + s.message());

  const JsonValue* protect = v.find("protect");
  if (!protect || protect->kind != JsonValue::Kind::Array)
    return badFleet("missing protect array");
  if (protect->items.size() > static_cast<std::size_t>(kMaxSmallCount))
    return badFleet("absurd protect count");
  out.protect.reserve(protect->items.size());
  for (const JsonValue& item : protect->items) {
    std::uint32_t idx = 0;
    if (!elemU32(item, &idx) || idx >= base.value().numOutputs())
      return badFleet("protect entry out of range");
    out.protect.push_back(idx);
  }
  out.base = base.take();
  out.spec = spec.take();
  return out;
}

std::string encodeFleetNeedCase(std::uint32_t caseCrc) {
  std::ostringstream os;
  os << "{\"case_crc\":" << caseCrc << "}";
  return os.str();
}

Result<std::uint32_t> decodeFleetNeedCase(std::string_view payload) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  std::uint32_t crc = 0;
  if (parsed.value().kind != JsonValue::Kind::Object ||
      !getU32(parsed.value(), "case_crc", &crc))
    return badFleet("malformed need-case");
  return crc;
}

std::string encodeFleetHeartbeat(std::uint64_t epoch) {
  std::ostringstream os;
  os << "{\"epoch\":";
  putU64String(os, epoch);
  os << "}";
  return os.str();
}

Result<std::uint64_t> decodeFleetHeartbeat(std::string_view payload) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  std::uint64_t epoch = 0;
  if (parsed.value().kind != JsonValue::Kind::Object ||
      !getU64String(parsed.value(), "epoch", &epoch))
    return badFleet("malformed heartbeat");
  return epoch;
}

std::string encodeFleetResult(std::uint64_t epoch, const WorkerPatch& patch) {
  // The patch document with the assignment epoch stamped into its envelope;
  // decodeWorkerPatch ignores the extra key, so the patch half of the
  // payload decodes through the one hardened codec both transports share.
  std::string body = encodeWorkerPatch(patch);
  std::ostringstream os;
  os << "{\"epoch\":";
  putU64String(os, epoch);
  os << ",";
  os << std::string_view(body).substr(1);
  return os.str();
}

Result<std::uint64_t> peekFleetEpoch(std::string_view payload) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  std::uint64_t epoch = 0;
  if (parsed.value().kind != JsonValue::Kind::Object ||
      !getU64String(parsed.value(), "epoch", &epoch))
    return badFleet("missing epoch");
  return epoch;
}

std::string encodeFleetFailure(const FleetFailure& failure) {
  std::ostringstream os;
  os << "{\"epoch\":";
  putU64String(os, failure.epoch);
  os << ",\"cause\":\"" << jsonEscape(failure.cause) << "\",\"detail\":\""
     << jsonEscape(failure.detail) << "\"}";
  return os.str();
}

Result<FleetFailure> decodeFleetFailure(std::string_view payload) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  const JsonValue& v = parsed.value();
  FleetFailure f;
  if (v.kind != JsonValue::Kind::Object ||
      !getU64String(v, "epoch", &f.epoch) ||
      !getString(v, "cause", &f.cause) ||
      !getString(v, "detail", &f.detail) ||
      !workerExitCauseFromName(f.cause))
    return badFleet("malformed failure");
  if (f.detail.size() > 4096) f.detail.resize(4096);
  return f;
}

// --- Whole-case batch fan-out payloads ------------------------------------

namespace {

// The report and verdicts are bounded text documents; the netlist snapshot
// dominates the frame and is bounded by the frame cap itself. Each bound is
// checked at decode so a corrupt length can't drive supervisor allocation.
constexpr std::size_t kMaxCaseTextBytes = 4u << 20;  // report / verdicts

}  // namespace

bool validFleetCaseName(std::string_view name) {
  if (name.empty() || name.size() > 64 || name.front() == '.') return false;
  for (char c : name) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string encodeFleetCaseTask(const FleetCaseTask& task) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"name\":\"" << jsonEscape(task.name)
     << "\",\"case_crc\":" << task.caseCrc << ",\"epoch\":";
  putU64String(os, task.epoch);
  os << ",\"lease_seconds\":" << task.leaseSeconds << ",\"jobs\":" << task.jobs
     << ",\"attempt\":" << task.attempt << "}";
  return os.str();
}

Result<FleetCaseTask> decodeFleetCaseTask(std::string_view payload) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  const JsonValue& v = parsed.value();
  if (v.kind != JsonValue::Kind::Object) return badFleet("not an object");
  FleetCaseTask task;
  if (!getString(v, "name", &task.name) || !validFleetCaseName(task.name) ||
      !getU32(v, "case_crc", &task.caseCrc) ||
      !getU64String(v, "epoch", &task.epoch) ||
      !getDouble(v, "lease_seconds", &task.leaseSeconds) ||
      task.leaseSeconds <= 0.0 || !getU32(v, "jobs", &task.jobs) ||
      task.jobs < 1 || task.jobs > 256 ||
      !getI64(v, "attempt", &task.attempt) || task.attempt < 1 ||
      task.attempt > kMaxSmallCount)
    return badFleet("malformed case task");
  return task;
}

std::string encodeFleetCaseResult(const FleetCaseResult& result) {
  std::ostringstream os;
  os << "{\"epoch\":";
  putU64String(os, result.epoch);
  os << ",\"exit_code\":" << result.exitCode << ",\"report\":\""
     << jsonEscape(result.report) << "\",\"verdicts\":\""
     << jsonEscape(result.verdicts) << "\",\"netlist\":\""
     << jsonEscape(result.netlist) << "\",\"cache_hits\":" << result.cacheHits
     << ",\"cache_misses\":" << result.cacheMisses
     << ",\"cache_evictions\":" << result.cacheEvictions << "}";
  return os.str();
}

Result<FleetCaseResult> decodeFleetCaseResult(std::string_view payload) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  const JsonValue& v = parsed.value();
  if (v.kind != JsonValue::Kind::Object) return badFleet("not an object");
  FleetCaseResult r;
  std::int64_t exitCode = 0;
  if (!getU64String(v, "epoch", &r.epoch) ||
      !getI64(v, "exit_code", &exitCode) || exitCode < 0 || exitCode > 255 ||
      !getString(v, "report", &r.report) ||
      !getString(v, "verdicts", &r.verdicts) ||
      !getString(v, "netlist", &r.netlist) ||
      !getU64(v, "cache_hits", &r.cacheHits) ||
      !getU64(v, "cache_misses", &r.cacheMisses) ||
      !getU64(v, "cache_evictions", &r.cacheEvictions))
    return badFleet("malformed case result");
  r.exitCode = static_cast<int>(exitCode);
  if (r.report.size() > kMaxCaseTextBytes ||
      r.verdicts.size() > kMaxCaseTextBytes)
    return badFleet("oversized case result text");
  // The report must at least parse as a JSON object (it is re-served to
  // clients verbatim); the verdicts record, when present, must be a single
  // journal line - one JSON object tagged "verdicts", no embedded newline -
  // because the supervisor compares it byte-for-byte with local runs.
  if (Result<JsonValue> rep = parseJson(r.report);
      !rep.isOk() || rep.value().kind != JsonValue::Kind::Object)
    return badFleet("case result report is not a JSON object");
  if (!r.verdicts.empty()) {
    if (r.verdicts.find('\n') != std::string::npos)
      return badFleet("verdicts record contains a newline");
    Result<JsonValue> ver = parseJson(r.verdicts);
    std::string type;
    if (!ver.isOk() || ver.value().kind != JsonValue::Kind::Object ||
        !getString(ver.value(), "type", &type) || type != "verdicts")
      return badFleet("malformed verdicts record");
  }
  // The netlist snapshot is validated by the caller via restoreRawString
  // (it needs the Netlist anyway); the codec only bounds it.
  if (r.netlist.size() > ipc::kMaxPayloadBytes)
    return badFleet("oversized netlist snapshot");
  return r;
}

double retryBackoffSeconds(const SysecoOptions& opt, std::uint32_t output,
                           int failedAttempts) {
  const int shift = std::min(failedAttempts - 1, 10);
  double ms = opt.isolateBackoffMs * static_cast<double>(1u << shift);
  ms = std::min(ms, 5000.0);
  std::uint64_t h =
      opt.seed ^
      (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(output) + 1));
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  ms += (static_cast<double>(h % 1024) / 1024.0) * 0.5 * ms;
  return ms / 1000.0;
}

}  // namespace syseco
