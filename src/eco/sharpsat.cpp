#include "eco/sharpsat.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace syseco {

namespace {

/// Words needed to hold 2^numZ sample bits (numZ >= 6 always: one
/// simulation word is 64 samples).
std::size_t paddedWords(std::uint32_t numZ) {
  return static_cast<std::size_t>(1) << (numZ - 6);
}

}  // namespace

SharpSatRanker::SharpSatRanker(const Signature& pinSig,
                               const std::vector<std::uint64_t>& errMask,
                               const std::vector<std::uint64_t>& correctMask,
                               const std::vector<std::uint64_t>& obsFullMask) {
  words_ = errMask.size();
  SYSECO_CHECK(words_ > 0 && pinSig.size() >= words_ &&
               correctMask.size() >= words_);
  // The sample count 64*words_ may not be a power of two; the truth-table
  // domain is the next one up, with the tail padded to zero in every mask
  // so it never contributes a model.
  const std::size_t samples = words_ * 64;
  numZ_ = static_cast<std::uint32_t>(std::bit_width(samples - 1));
  const std::size_t pw = paddedWords(numZ_);

  pinBits_.assign(pw, 0);
  errBits_.assign(pw, 0);
  obsCorrectBits_.assign(pw, 0);
  for (std::size_t wd = 0; wd < words_; ++wd) {
    const std::uint64_t obsF =
        obsFullMask.empty() ? ~0ULL : obsFullMask[wd];
    pinBits_[wd] = pinSig[wd];
    errBits_[wd] = errMask[wd];
    obsCorrectBits_[wd] = correctMask[wd] & obsF;
  }

  zVars_.resize(numZ_);
  for (std::uint32_t v = 0; v < numZ_; ++v) zVars_[v] = v;
  rebuild();
  // Domain sizes double as exactness witnesses: a truth-table function's
  // model count is its popcount, so these are integers representable
  // exactly in double (counts stay far below 2^52).
  errCount_ = mgr_->satCount(err_);
  obsCorrectCount_ = mgr_->satCount(obsCorrect_);
}

void SharpSatRanker::rebuild() {
  // Sample-index variables carry no structure worth sifting (any order is
  // as good as any other for near-random signatures), so the manager
  // keeps identity order; per-shortlist lifetime keeps it small anyway.
  BddConfig cfg;
  cfg.reorder = BddReorder::kOff;
  mgr_ = std::make_unique<Bdd>(numZ_, cfg);
  err_ = mgr_->fromTruthTable(errBits_, zVars_);
  obsCorrect_ = mgr_->fromTruthTable(obsCorrectBits_, zVars_);
}

CoverageScore SharpSatRanker::score(const Signature& candSig) {
  SYSECO_CHECK(candSig.size() >= words_);
  // The arena is append-only; each query leaves its truth-table BDD
  // behind. Reset once the garbage outweighs a fresh start.
  if (mgr_->nodeCount() > (1u << 18)) rebuild();

  std::vector<std::uint64_t> diffBits(pinBits_.size(), 0);
  for (std::size_t wd = 0; wd < words_; ++wd)
    diffBits[wd] = pinBits_[wd] ^ candSig[wd];
  const Bdd::Ref diff = mgr_->fromTruthTable(diffBits, zVars_);

  const double hit = mgr_->satCount(mgr_->bAnd(diff, err_));
  const double risk = mgr_->satCount(mgr_->bAnd(diff, obsCorrect_));

  CoverageScore s;
  s.errorCoverage = hit / std::max(errCount_, 1.0);
  s.breakRisk = risk / std::max(obsCorrectCount_, 1.0);
  // hit and risk are exact integers in double; llround recovers the
  // word-level key without any rounding slack.
  s.rankKey = static_cast<std::ptrdiff_t>(std::llround(hit - 2.0 * risk));
  return s;
}

}  // namespace syseco
