#pragma once
// The symbolic sampling domain (paper §5.1).
//
// A sampling domain is a set of N input assignments {x_1..x_N}, encoded by
// ceil(log2 N) fresh variables z through the sampling function g(z). Once a
// circuit's inputs are overloaded with g(z), *every net's function in the
// domain is fully described by its N-bit value vector on the samples* - a
// simulation signature. The bridge signature -> BDD-over-z is
// Bdd::fromTruthTable; everything the rectification search needs
// (H(t), utilities, Xi(c)) is then computed over these small functions.
//
// Samples are drawn preferentially from the error domain
// E = {x | f(x) != f'(x)} - the paper observes this yields fewer false
// positives - and the set grows as SAT validation returns
// counterexamples (the refinement loop of §5.2 step 5).

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace syseco {

class SampleSet {
 public:
  void add(InputPattern pattern) { patterns_.push_back(std::move(pattern)); }

  const std::vector<InputPattern>& patterns() const { return patterns_; }
  std::size_t count() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }

  /// Number of z variables: ceil(log2 count), at least 1.
  std::uint32_t numZVars() const;

  /// 2^numZVars(); sample slots past count() hold the all-zero assignment
  /// (the simulator zero-fills unused pattern slots). Padding slots are a
  /// legitimate if redundant part of the sampling domain - they are always
  /// excluded from error/utility statistics via errorMask's count() cap.
  std::size_t paddedCount() const { return std::size_t{1} << numZVars(); }

  /// Simulator words needed to hold paddedCount() patterns.
  std::size_t simWords() const { return (paddedCount() + 63) / 64; }

 private:
  std::vector<InputPattern> patterns_;
};

/// Simulates `netlist` over the samples. The samples are expressed over
/// `owner`'s primary inputs; they are translated to `netlist`'s inputs by
/// label, with unmatched inputs filled deterministically from `rng`.
/// The returned simulator has run; net signatures are its value() vectors.
Simulator simulateOnSamples(const Netlist& netlist, const Netlist& owner,
                            const SampleSet& samples, Rng& rng);

/// Bits [0, samples.count()) where two output signatures disagree - the
/// error-domain membership mask of the samples for one output pair.
std::vector<std::uint64_t> errorMask(const Signature& implOut,
                                     const Signature& specOut,
                                     const SampleSet& samples);

/// Population count over a masked signature (utility numerators etc.).
std::size_t countBits(const std::vector<std::uint64_t>& words);

}  // namespace syseco
