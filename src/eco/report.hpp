#pragma once
// The machine-readable run report (schema documented in README.md), shared
// by the CLI one-shot path and the fleet agent's whole-case batch path: a
// case dispatched to a remote agent must ship back the same report document
// a local run would have written, byte-for-byte after the standard timing
// normalization.

#include <ostream>
#include <string>

#include "eco/patch.hpp"
#include "eco/syseco.hpp"
#include "verify/audit.hpp"

namespace syseco {

/// Streams the full run report JSON for one engine run.
void writeRunReport(std::ostream& os, const std::string& engine,
                    const EcoResult& result, const SysecoDiagnostics& diag,
                    AuditLevel auditLevel, bool oracleEnabled, int exitCode);

/// Convenience: the report as a string (the wire/batch shape).
std::string runReportText(const std::string& engine, const EcoResult& result,
                          const SysecoDiagnostics& diag, AuditLevel auditLevel,
                          bool oracleEnabled, int exitCode);

}  // namespace syseco
