#include "eco/matching.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace syseco {

std::uint64_t hashSignature(const Signature& sig, bool complemented) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t w : sig) {
    if (complemented) w = ~w;
    h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

namespace {

/// Shape key for structural matching: gate type over sorted fanin ids.
std::uint64_t shapeKey(GateType type, std::vector<NetId> fanins) {
  std::sort(fanins.begin(), fanins.end());
  std::uint64_t h = static_cast<std::uint64_t>(type) + 0x51ed270b;
  for (NetId f : fanins) h ^= f + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

bool signaturesEqual(const Signature& a, const Signature& b,
                     bool complemented) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((complemented ? ~b[i] : b[i]) != a[i]) return false;
  }
  return true;
}

Simulator makeImplSim(const Netlist& impl, std::size_t words, Rng& rng) {
  Simulator sim(impl, words);
  sim.randomizeInputs(rng);
  sim.run();
  return sim;
}

Simulator makeSpecSim(const Netlist& spec, const Netlist& impl,
                      const Simulator& implSim, std::size_t words, Rng& rng) {
  Simulator sim(spec, words);
  for (std::size_t i = 0; i < spec.numInputs(); ++i) {
    const std::uint32_t idxC =
        impl.findInput(spec.inputName(static_cast<std::uint32_t>(i)));
    for (std::size_t w = 0; w < words; ++w)
      sim.setInputWord(
          static_cast<std::uint32_t>(i), w,
          idxC != kNullId ? implSim.word(impl.inputNet(idxC), w) : rng.next());
  }
  sim.run();
  return sim;
}

}  // namespace

MatchedSpecCloner::MatchedSpecCloner(PatchTracker& tracker,
                                     const Netlist& spec,
                                     const MatcherOptions& options, Rng& rng)
    : tracker_(tracker),
      spec_(spec),
      options_(options),
      matchableNets_(tracker.netlist().numNetsTotal()),
      implSim_(makeImplSim(tracker.netlist(), options.simWords, rng)),
      specSim_(makeSpecSim(spec, tracker.netlist(), implSim_, options.simWords,
                           rng)),
      confirm_(tracker.netlist(), spec) {
  const Netlist& impl = tracker_.netlist();
  const std::vector<std::uint32_t> levels = impl.netLevels();
  if (options_.mode == MatchMode::Functional) {
    for (NetId n = 0; n < matchableNets_; ++n) {
      const auto& net = impl.net(n);
      const bool liveDriven =
          net.srcKind == Netlist::SourceKind::Input ||
          (net.srcKind == Netlist::SourceKind::Gate &&
           !impl.gate(net.srcIdx).dead);
      if (!liveDriven) continue;
      implBySigHash_[hashSignature(implSim_.value(n), false)].push_back(n);
    }
    // Lower-level (cheaper, timing-friendlier) candidates first.
    for (auto& [hash, nets] : implBySigHash_) {
      (void)hash;
      std::sort(nets.begin(), nets.end(),
                [&](NetId a, NetId b) { return levels[a] < levels[b]; });
    }
  } else {
    for (GateId g : impl.topoOrder()) {
      const auto& gate = impl.gate(g);
      if (gate.out >= matchableNets_) continue;
      implByShape_[shapeKey(gate.type, gate.fanins)].push_back(gate.out);
    }
  }
}

NetId MatchedSpecCloner::tryStructuralMatch(NetId specNet) {
  // Forward structural correspondence: a spec gate matches when an
  // implementation gate of the same type exists over already-matched
  // fanins. Any structural divergence (restructured, collapsed or
  // duplicated logic) breaks the chain - the fragility the paper's §2
  // ascribes to structural approaches.
  const auto& net = spec_.net(specNet);
  if (net.srcKind != Netlist::SourceKind::Gate) return kNullId;
  const auto& gate = spec_.gate(net.srcIdx);
  std::vector<NetId> mappedFanins;
  mappedFanins.reserve(gate.fanins.size());
  for (NetId f : gate.fanins) {
    const auto it = cache_.find(f);
    if (it == cache_.end()) return kNullId;  // fanin was not matched
    if (it->second >= matchableNets_) return kNullId;  // fanin is a clone
    mappedFanins.push_back(it->second);
  }
  const auto it = implByShape_.find(shapeKey(gate.type, mappedFanins));
  if (it == implByShape_.end()) return kNullId;
  const Netlist& impl = tracker_.netlist();
  std::vector<NetId> want = mappedFanins;
  std::sort(want.begin(), want.end());
  for (NetId cand : it->second) {
    const GateId cg = impl.driverOf(cand);
    if (cg == kNullId) continue;
    const auto& candGate = impl.gate(cg);
    if (candGate.type != gate.type) continue;
    std::vector<NetId> have = candGate.fanins;
    std::sort(have.begin(), have.end());
    if (have == want) {
      ++matchesUsed_;
      return cand;
    }
  }
  return kNullId;
}

NetId MatchedSpecCloner::tryMatch(NetId specNet, std::int64_t budget) {
  if (options_.mode == MatchMode::Structural)
    return tryStructuralMatch(specNet);
  const Signature& sig = specSim_.value(specNet);
  for (int phase = 0; phase < (options_.allowComplementMatch ? 2 : 1);
       ++phase) {
    const bool compl_ = phase == 1;
    const auto it = implBySigHash_.find(hashSignature(sig, compl_));
    if (it == implBySigHash_.end()) continue;
    std::size_t tried = 0;
    for (NetId cand : it->second) {
      if (!signaturesEqual(implSim_.value(cand), sig, compl_)) continue;
      if (++tried > options_.candidatesPerNet) break;
      if (confirm_.solveNetsDiff(cand, specNet, compl_, budget) ==
          Solver::Result::Unsat) {
        // Pin the proven relation as clauses: later confirmations higher
        // up the cones become near-propositional (SAT sweeping).
        const Var a = confirm_.implEncoder().netVar(cand);
        const Var b = confirm_.specEncoder().netVar(specNet);
        confirm_.solver().addClause(Lit::make(a, true),
                                    Lit::make(b, compl_));
        confirm_.solver().addClause(Lit::make(a, false),
                                    Lit::make(b, !compl_));
        ++matchesUsed_;
        if (!compl_) return cand;
        return tracker_.netlist().addGate(GateType::Not, {cand});
      }
    }
  }
  return kNullId;
}

NetId MatchedSpecCloner::clone(NetId specNet) {
  if (auto it = cache_.find(specNet); it != cache_.end()) return it->second;
  NetId result = kNullId;
  const auto& net = spec_.net(specNet);
  switch (net.srcKind) {
    case Netlist::SourceKind::Input: {
      const std::uint32_t idx =
          tracker_.netlist().findInput(spec_.inputName(net.srcIdx));
      SYSECO_CHECK(idx != kNullId);
      result = tracker_.netlist().inputNet(idx);
      break;
    }
    case Netlist::SourceKind::Gate: {
      if (options_.mode == MatchMode::Functional) {
        // Functional matching can short-circuit the whole sub-cone; when
        // the proof is too hard top-down (budget trip), resolve the fanins
        // first - their pinned equivalences usually make the retry cheap.
        const std::int64_t divisor = std::max<std::int64_t>(
            options_.probeBudgetDivisor, 1);
        result = tryMatch(specNet, std::max<std::int64_t>(
            options_.confirmBudget / divisor, 64));
        if (result != kNullId) break;
        const auto& gate = spec_.gate(net.srcIdx);
        std::vector<NetId> fanins;
        fanins.reserve(gate.fanins.size());
        for (NetId f : gate.fanins) fanins.push_back(clone(f));
        result = tryMatch(specNet, options_.confirmBudget);
        if (result != kNullId) break;
        result = tracker_.netlist().addGate(gate.type, fanins);
      } else {
        // Structural matching is bottom-up: fanins resolve first, then the
        // gate itself may coincide with an existing one.
        const auto& gate = spec_.gate(net.srcIdx);
        std::vector<NetId> fanins;
        fanins.reserve(gate.fanins.size());
        for (NetId f : gate.fanins) fanins.push_back(clone(f));
        result = tryMatch(specNet, options_.confirmBudget);
        if (result == kNullId)
          result = tracker_.netlist().addGate(gate.type, fanins);
      }
      break;
    }
    case Netlist::SourceKind::None:
      SYSECO_CHECK(false && "cloning an undriven spec net");
  }
  cache_.emplace(specNet, result);
  return result;
}

}  // namespace syseco
