#include "eco/patch.hpp"

#include <algorithm>
#include <atomic>
#include <future>

#include "cnf/encode.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace syseco {

PatchTracker::PatchTracker(Netlist& working)
    : working_(working),
      baseGates_(working.numGatesTotal()),
      baseNets_(working.numNetsTotal()) {
  for (std::uint32_t i = 0; i < working_.numInputs(); ++i)
    inputByName_.emplace(working_.inputName(i), working_.inputNet(i));
}

PatchTracker::PatchTracker(Netlist& working, const State& state)
    : working_(working),
      baseGates_(state.baseGates),
      baseNets_(state.baseNets),
      rewires_(state.rewires) {
  for (std::uint32_t i = 0; i < working_.numInputs(); ++i)
    inputByName_.emplace(working_.inputName(i), working_.inputNet(i));
  for (const auto& [specNet, here] : state.cloneCache)
    specCloneCache_.emplace(specNet, here);
}

PatchTracker::State PatchTracker::state() const {
  State s;
  s.baseGates = baseGates_;
  s.baseNets = baseNets_;
  s.rewires = rewires_;
  s.cloneCache.assign(specCloneCache_.begin(), specCloneCache_.end());
  std::sort(s.cloneCache.begin(), s.cloneCache.end());
  return s;
}

void PatchTracker::rewire(const Sink& sink, NetId newNet) {
  NetId oldNet;
  if (sink.isOutput()) {
    oldNet = working_.outputNet(sink.port);
  } else {
    oldNet = working_.gate(sink.gate).fanins[sink.port];
  }
  if (oldNet == newNet) return;
  working_.rewireSink(sink, newNet);
  rewires_.push_back(RewireRecord{sink, oldNet, newNet});
}

void PatchTracker::rollback(std::size_t mark) {
  while (rewires_.size() > mark) {
    const RewireRecord& r = rewires_.back();
    working_.rewireSink(r.sink, r.oldNet);
    rewires_.pop_back();
  }
}

NetId PatchTracker::cloneSpecCone(const Netlist& spec, NetId specNet) {
  return working_.cloneCone(spec, specNet, inputByName_, specCloneCache_);
}

PatchStats PatchTracker::finalize() {
  working_.sweepDeadLogic();
  PatchStats stats;

  // Outputs: distinct rewired pins whose final driver differs from the
  // original one (a pin rewired and later restored does not count).
  // The rewire log may touch the same pin several times; the last record
  // wins.
  std::vector<RewireRecord> lastBySink;  // oldNet = first original driver
  for (const RewireRecord& r : rewires_) {
    // Rewires of pins that belong to *added* gates are patch-internal
    // bookkeeping (sweeping merges); the patch boundary only counts pins of
    // pre-existing logic and primary outputs.
    if (!r.sink.isOutput() && r.sink.gate >= baseGates_) continue;
    auto it = std::find_if(
        lastBySink.begin(), lastBySink.end(),
        [&](const RewireRecord& p) { return p.sink == r.sink; });
    if (it != lastBySink.end())
      it->newNet = r.newNet;
    else
      lastBySink.push_back(r);
  }
  lastBySink.erase(std::remove_if(lastBySink.begin(), lastBySink.end(),
                                  [](const RewireRecord& r) {
                                    return r.oldNet == r.newNet;
                                  }),
                   lastBySink.end());

  auto isConstNet = [&](NetId n) {
    const auto& net = working_.net(n);
    if (net.srcKind != Netlist::SourceKind::Gate) return false;
    const GateType t = working_.gate(net.srcIdx).type;
    return t == GateType::Const0 || t == GateType::Const1;
  };

  std::vector<NetId> inputNets;
  std::vector<NetId> connectionNets;
  for (const RewireRecord& r : lastBySink) {
    ++stats.outputs;
    if (isOriginalNet(r.newNet)) {
      connectionNets.push_back(r.newNet);
      if (!isConstNet(r.newNet)) inputNets.push_back(r.newNet);
    }
  }

  // Added logic.
  for (GateId g = static_cast<GateId>(baseGates_);
       g < working_.numGatesTotal(); ++g) {
    const auto& gate = working_.gate(g);
    if (gate.dead) continue;
    const bool isConst =
        gate.type == GateType::Const0 || gate.type == GateType::Const1;
    if (!isConst) ++stats.gates;
    ++stats.nets;  // the gate's output net
    for (NetId f : gate.fanins) {
      if (isOriginalNet(f) && !isConstNet(f)) inputNets.push_back(f);
    }
  }

  std::sort(inputNets.begin(), inputNets.end());
  inputNets.erase(std::unique(inputNets.begin(), inputNets.end()),
                  inputNets.end());
  std::sort(connectionNets.begin(), connectionNets.end());
  connectionNets.erase(
      std::unique(connectionNets.begin(), connectionNets.end()),
      connectionNets.end());
  stats.inputs = inputNets.size();
  stats.nets += connectionNets.size();
  return stats;
}

bool verifyAllOutputs(const Netlist& impl, const Netlist& spec) {
  PairEncoding pe(impl, spec);
  Rng rng(0x5eedu);
  for (std::uint32_t o = 0; o < impl.numOutputs(); ++o) {
    const std::uint32_t op = spec.findOutput(impl.outputName(o));
    if (op == kNullId) continue;
    if (pe.solveDiffSwept(o, op, /*conflictBudget=*/-1, rng) !=
        Solver::Result::Unsat)
      return false;
  }
  return true;
}

bool verifyAllOutputs(const Netlist& impl, const Netlist& spec,
                      ThreadPool& pool) {
  const std::uint32_t numOutputs = impl.numOutputs();
  const std::size_t chunks =
      std::min<std::size_t>(std::max<std::size_t>(pool.threadCount(), 1),
                            std::max<std::uint32_t>(numOutputs, 1));
  if (chunks <= 1) return verifyAllOutputs(impl, spec);

  std::atomic<bool> ok{true};
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(pool.submit([&, c] {
      // Each worker owns its encoding and solver; every check is unbounded
      // so its verdict is definite and the conjunction below is
      // schedule-independent.
      PairEncoding pe(impl, spec);
      Rng rng(0x5eedu);
      for (std::uint32_t o = static_cast<std::uint32_t>(c); o < numOutputs;
           o += static_cast<std::uint32_t>(chunks)) {
        if (!ok.load(std::memory_order_relaxed)) return;
        const std::uint32_t op = spec.findOutput(impl.outputName(o));
        if (op == kNullId) continue;
        if (pe.solveDiffSwept(o, op, /*conflictBudget=*/-1, rng) !=
            Solver::Result::Unsat) {
          ok.store(false, std::memory_order_relaxed);
          return;
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  return ok.load(std::memory_order_relaxed);
}

}  // namespace syseco
