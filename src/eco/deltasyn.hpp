#pragma once
// DeltaSyn-style baseline engine (after Krishnaswamy et al., ICCAD'09 [8]).
//
// DeltaSyn computes a *difference region*: it matches signals of the
// implementation C and the revised specification C' from the primary inputs
// forward, and the patch is all C' logic between the matched frontier and
// each failing output. Matching here is simulation-signature driven and
// SAT-confirmed (with a conflict budget), optionally up to complement.
//
// The weakness the paper exploits (§2): the patch is the entire unmatched
// difference region, so whenever the revision sits upstream of a wide
// cone - or optimization has destroyed the correspondence the frontier
// needs - the patch inflates, while rewire-based rectification can cut in
// at interior sink pins. This reproduction keeps that behavior: everything
// downstream of a revision is unmatchable by construction and gets cloned.

#include "eco/matching.hpp"
#include "eco/patch.hpp"
#include "netlist/netlist.hpp"

namespace syseco {

struct DeltaSynOptions {
  /// Structural is the faithful reproduction of the 2009-era tool the paper
  /// benchmarks against; Functional upgrades its matcher to simulation+SAT
  /// equivalences (used by the heuristics ablation to show the baseline is
  /// not a strawman).
  MatchMode matchMode = MatchMode::Structural;
  std::size_t simWords = 16;           ///< 64*simWords matching patterns
  std::int64_t matchBudget = 20000;    ///< SAT conflicts per confirmation
  std::size_t candidatesPerNet = 4;    ///< impl candidates tried per spec net
  bool allowComplementMatch = true;
  std::uint64_t seed = 1;
};

EcoResult runDeltaSyn(const Netlist& impl, const Netlist& spec,
                      const DeltaSynOptions& options = {});

}  // namespace syseco
