#pragma once
// Match-aware specification cloning, shared by the ECO engines.
//
// When an engine instantiates revised-specification logic inside the
// implementation, any spec sub-cone that is functionally equivalent to an
// existing implementation net (up to complement) should tap that net
// instead of being cloned - this is the "reuse existing logic from either
// current implementation or an intermediate representation of new
// specification" of the paper's rewire-based philosophy, and it is also the
// core of the DeltaSyn [8] baseline's difference-region extraction.
//
// Equivalences are proposed by simulation signatures and confirmed by a
// budgeted SAT query on a shared (C, C') encoding.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cnf/encode.hpp"
#include "eco/patch.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace syseco {

/// How spec logic is matched against existing implementation logic.
///  * Functional: simulation-signature candidates confirmed by SAT - robust
///    to restructuring (what syseco's reuse machinery deserves).
///  * Structural: forward structural correspondence (same gate type over
///    already-matched fanins, inputs by label) - the matching style of the
///    DeltaSyn [8] era, which "places a stability burden on synthesis tools
///    to retain structural similarity" (paper §2) and degrades on
///    aggressively optimized implementations.
enum class MatchMode { Functional, Structural };

struct MatcherOptions {
  MatchMode mode = MatchMode::Functional;
  std::size_t simWords = 16;         ///< 64*simWords matching patterns
  std::int64_t confirmBudget = 20000;///< SAT conflicts per confirmation
  std::size_t candidatesPerNet = 4;  ///< impl candidates tried per spec net
  bool allowComplementMatch = true;
  /// Functional matching probes each spec gate twice: a cheap top-down
  /// probe at confirmBudget / probeBudgetDivisor conflicts (floor 64)
  /// before its fanins are resolved, then a full-budget retry afterwards,
  /// when the fanins' pinned equivalence clauses make the proof
  /// near-propositional. Hard instances are hard because the sub-cones are
  /// unresolved - burning the full budget on the first probe buys almost
  /// no extra matches but dominates fallback time, so the schedule spends
  /// it where it pays.
  std::int64_t probeBudgetDivisor = 16;
};

/// Clones spec cones into the working netlist, cutting at confirmed
/// equivalences with *pre-existing* working-netlist nets.
///
/// The working netlist may grow while the cloner is alive (it only appends
/// gates), but pins of pre-existing logic must not be rewired between
/// clone() calls of the same instance - create a fresh instance after
/// rewiring, as the cached signatures and CNF would be stale.
class MatchedSpecCloner {
 public:
  MatchedSpecCloner(PatchTracker& tracker, const Netlist& spec,
                    const MatcherOptions& options, Rng& rng);

  /// Net in the working netlist realizing `specNet`'s function.
  NetId clone(NetId specNet);

  /// Number of confirmed equivalence cut-points used so far.
  std::size_t matchesUsed() const { return matchesUsed_; }

 private:
  NetId tryMatch(NetId specNet, std::int64_t budget);
  NetId tryStructuralMatch(NetId specNet);

  PatchTracker& tracker_;
  const Netlist& spec_;
  MatcherOptions options_;
  std::size_t matchableNets_;  ///< nets existing at construction time
  Simulator implSim_;
  Simulator specSim_;
  PairEncoding confirm_;
  std::unordered_map<std::uint64_t, std::vector<NetId>> implBySigHash_;
  /// Structural mode: (type, sorted fanins) -> implementation net.
  std::unordered_map<std::uint64_t, std::vector<NetId>> implByShape_;
  std::unordered_map<NetId, NetId> cache_;
  std::size_t matchesUsed_ = 0;
};

/// Signature hash helper shared with tests.
std::uint64_t hashSignature(const Signature& sig, bool complemented);

}  // namespace syseco
