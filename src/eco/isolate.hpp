#pragma once
// Message payloads exchanged between the --isolate supervisor (syseco.cpp)
// and its forked worker subprocesses (util/subprocess.hpp), carried inside
// crc32-framed IPC messages (util/ipc.hpp).
//
// A worker is a pure function of (base netlist, spec, options, output): it
// rectifies one output against the shared base snapshot and ships back a
// WorkerPatch - the gates it appended past the snapshot, its rewire trail
// and its diagnostics fragment. The supervisor replays that patch through
// the *same* plan-order commit path the in-process speculative mode uses,
// which is what makes successful isolated runs bit-identical to --jobs runs.
//
// Payloads are JSON (the journal_io idiom) so the fuzz-hardened parser
// guards the wire format, and decodeWorkerPatch re-validates every id
// against the supervisor's own copy of the base snapshot: a worker is an
// untrusted job, and a corrupted response must classify as a garbage-ipc
// failure, never corrupt (or abort) the supervisor.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "eco/patch.hpp"
#include "eco/syseco.hpp"
#include "netlist/netlist.hpp"
#include "util/status.hpp"

namespace syseco {

/// Supervisor -> worker: which output to rectify. The attempt ordinal is
/// carried for logging/fault-site symmetry; it does not shape the search
/// (every attempt is the same pure function, which is what makes retrying
/// transient failures sound).
struct IsolateTaskRequest {
  std::uint32_t output = 0;
  std::int64_t attempt = 1;
};

/// Worker -> supervisor: one speculative per-output result, id-relative to
/// the shared base snapshot. Also the in-process hand-off shape: the
/// speculative thread path extracts the same struct from its worker engine,
/// so both modes commit through one code path.
struct WorkerPatch {
  struct NewGate {
    GateType type = GateType::Const0;
    std::vector<NetId> fanins;
    NetId out = kNullId;
  };

  bool produced = false;  ///< false: the output has no spec twin (no report)
  /// Gate/net counts of the base snapshot the ids are relative to; the
  /// decoder rejects a patch whose counts disagree with the supervisor's.
  std::uint64_t baseGates = 0;
  std::uint64_t baseNets = 0;
  std::vector<NewGate> gates;  ///< gates appended past the base, in id order
  std::vector<PatchTracker::RewireRecord> rewires;
  /// The worker's diagnostics fragment: search counters, phase seconds and
  /// (when produced) exactly one OutputReport.
  SysecoDiagnostics frag;
};

std::string encodeTaskRequest(const IsolateTaskRequest& req);
Result<IsolateTaskRequest> decodeTaskRequest(std::string_view payload);

std::string encodeWorkerPatch(const WorkerPatch& patch);

/// Hardened decode with full semantic validation against `base` (the
/// supervisor's copy of the shared snapshot): snapshot counts must match,
/// appended gate i must drive net baseNets+i from strictly older nets with
/// an arity-correct fanin list, rewires must target existing pins and nets,
/// and the report must describe a real output of `base`. Any violation is
/// kInvalidInput - the supervisor classifies it as garbage-ipc.
Result<WorkerPatch> decodeWorkerPatch(std::string_view payload,
                                      const Netlist& base);

}  // namespace syseco
