#pragma once
// Message payloads exchanged between the --isolate supervisor (syseco.cpp)
// and its forked worker subprocesses (util/subprocess.hpp), carried inside
// crc32-framed IPC messages (util/ipc.hpp).
//
// A worker is a pure function of (base netlist, spec, options, output): it
// rectifies one output against the shared base snapshot and ships back a
// WorkerPatch - the gates it appended past the snapshot, its rewire trail
// and its diagnostics fragment. The supervisor replays that patch through
// the *same* plan-order commit path the in-process speculative mode uses,
// which is what makes successful isolated runs bit-identical to --jobs runs.
//
// Payloads are JSON (the journal_io idiom) so the fuzz-hardened parser
// guards the wire format, and decodeWorkerPatch re-validates every id
// against the supervisor's own copy of the base snapshot: a worker is an
// untrusted job, and a corrupted response must classify as a garbage-ipc
// failure, never corrupt (or abort) the supervisor.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "eco/patch.hpp"
#include "eco/syseco.hpp"
#include "netlist/netlist.hpp"
#include "util/status.hpp"

namespace syseco {

/// Supervisor -> worker: which output to rectify. The attempt ordinal is
/// carried for logging/fault-site symmetry; it does not shape the search
/// (every attempt is the same pure function, which is what makes retrying
/// transient failures sound).
struct IsolateTaskRequest {
  std::uint32_t output = 0;
  std::int64_t attempt = 1;
};

/// Worker -> supervisor: one speculative per-output result, id-relative to
/// the shared base snapshot. Also the in-process hand-off shape: the
/// speculative thread path extracts the same struct from its worker engine,
/// so both modes commit through one code path.
struct WorkerPatch {
  struct NewGate {
    GateType type = GateType::Const0;
    std::vector<NetId> fanins;
    NetId out = kNullId;
  };

  bool produced = false;  ///< false: the output has no spec twin (no report)
  /// Gate/net counts of the base snapshot the ids are relative to; the
  /// decoder rejects a patch whose counts disagree with the supervisor's.
  std::uint64_t baseGates = 0;
  std::uint64_t baseNets = 0;
  std::vector<NewGate> gates;  ///< gates appended past the base, in id order
  std::vector<PatchTracker::RewireRecord> rewires;
  /// The worker's diagnostics fragment: search counters, phase seconds and
  /// (when produced) exactly one OutputReport.
  SysecoDiagnostics frag;
};

std::string encodeTaskRequest(const IsolateTaskRequest& req);
Result<IsolateTaskRequest> decodeTaskRequest(std::string_view payload);

std::string encodeWorkerPatch(const WorkerPatch& patch);

/// Hardened decode with full semantic validation against `base` (the
/// supervisor's copy of the shared snapshot): snapshot counts must match,
/// appended gate i must drive net baseNets+i from strictly older nets with
/// an arity-correct fanin list, rewires must target existing pins and nets,
/// and the report must describe a real output of `base`. Any violation is
/// kInvalidInput - the supervisor classifies it as garbage-ipc.
Result<WorkerPatch> decodeWorkerPatch(std::string_view payload,
                                      const Netlist& base);

// --- Fleet transport payloads (--workers / --serve-worker) ----------------
//
// The TCP fleet reuses the pipe transport's patch codec and grows three
// things: a task request carrying a lease, an assignment epoch and a
// content-addressed case reference; a one-time case-upload payload (the
// base and spec snapshots plus the exact search-shaping options and
// protect list, so an agent's result is the same pure function a local
// worker computes); and epoch-stamped result/heartbeat/failure envelopes
// so the supervisor can reject duplicates from reassigned tasks.

/// Supervisor -> agent: rectify one output. `caseCrc` is the crc32 of the
/// encoded case payload; an agent that has not cached it answers with a
/// need-case frame before starting. `epoch` uniquely identifies this
/// assignment - every frame the agent sends back about the task carries it.
struct FleetTaskRequest {
  std::uint32_t output = 0;
  std::int64_t attempt = 1;
  std::uint64_t epoch = 0;
  double leaseSeconds = 10.0;  ///< agent paces heartbeats well inside this
  std::uint32_t caseCrc = 0;
};

std::string encodeFleetTaskRequest(const FleetTaskRequest& req);
Result<FleetTaskRequest> decodeFleetTaskRequest(std::string_view payload);

/// The decoded one-time case upload: everything a per-output task is a
/// pure function of, minus the output index itself.
struct FleetCase {
  Netlist base;
  Netlist spec;
  SysecoOptions options;  ///< sanitized worker options (search-shaping only)
  std::vector<std::uint32_t> protect;  ///< plan order / protect set
};

std::string encodeFleetCase(const Netlist& base, const Netlist& spec,
                            const SysecoOptions& options,
                            const std::vector<std::uint32_t>& protect);

/// Hardened decode: both netlist snapshots re-validated by the raw-restore
/// parser, options re-validated by validateSysecoOptions, protect entries
/// bounded by the base output count.
Result<FleetCase> decodeFleetCase(std::string_view payload);

/// Agent -> supervisor need-case and heartbeat payloads.
std::string encodeFleetNeedCase(std::uint32_t caseCrc);
Result<std::uint32_t> decodeFleetNeedCase(std::string_view payload);
std::string encodeFleetHeartbeat(std::uint64_t epoch);
Result<std::uint64_t> decodeFleetHeartbeat(std::string_view payload);

/// Agent -> supervisor result: a WorkerPatch document with the assignment
/// epoch stamped in. The epoch is peeked first (cheap reject of stale
/// results); the patch half decodes through decodeWorkerPatch, which
/// ignores the extra key.
std::string encodeFleetResult(std::uint64_t epoch, const WorkerPatch& patch);
Result<std::uint64_t> peekFleetEpoch(std::string_view payload);

/// Agent -> supervisor contained failure (compute threw, bad request, an
/// injected fault the agent could still report). `cause` is a
/// workerExitCauseName string.
struct FleetFailure {
  std::uint64_t epoch = 0;
  std::string cause;
  std::string detail;
};

std::string encodeFleetFailure(const FleetFailure& failure);
Result<FleetFailure> decodeFleetFailure(std::string_view payload);

// --- Whole-case batch fan-out payloads (--batch / daemon dispatch) --------
//
// Batch mode dispatches an *entire case* to an agent: the case upload reuses
// encodeFleetCase + crc32 content addressing (so the agent's CaseCacheLru
// amortizes it across retries), and the result envelope carries everything a
// local run would have written to disk - the full report JSON, the verdicts
// record and the patched netlist snapshot - plus the agent's cache counters
// so batch-level cache amortization is observable at the supervisor.

/// Case names come from user manifests and name artifact directories on the
/// supervisor; the codec accepts only short portable path components:
/// 1..64 chars of [A-Za-z0-9._-], not starting with '.'.
bool validFleetCaseName(std::string_view name);

/// Supervisor -> agent: run one whole case. `jobs` is the agent-local
/// per-output parallelism (the engine's --jobs), part of the wire contract
/// because verdicts must be bit-identical to a local `--jobs N` run.
struct FleetCaseTask {
  std::string name;
  std::uint32_t caseCrc = 0;
  std::uint64_t epoch = 0;
  double leaseSeconds = 10.0;
  std::uint32_t jobs = 1;
  std::int64_t attempt = 1;
};

std::string encodeFleetCaseTask(const FleetCaseTask& task);
Result<FleetCaseTask> decodeFleetCaseTask(std::string_view payload);

/// Agent -> supervisor: the whole-case outcome. `report` is the full run
/// report JSON text; `verdicts` is the oracle's verdicts journal record
/// (empty when the oracle was disabled); `netlist` is the patched
/// implementation as a raw-restore snapshot - the supervisor re-validates it
/// through Netlist::restoreRawString before writing any artifact. The cache
/// counters snapshot the agent's CaseCacheLru at completion time.
struct FleetCaseResult {
  std::uint64_t epoch = 0;
  int exitCode = 0;  ///< the engine exit classification (0/1/4)
  std::string report;
  std::string verdicts;
  std::string netlist;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t cacheEvictions = 0;
};

std::string encodeFleetCaseResult(const FleetCaseResult& result);
Result<FleetCaseResult> decodeFleetCaseResult(std::string_view payload);

/// Deterministic capped exponential retry backoff, shared by every worker
/// transport (forked pipe workers and fleet agents). The exponential base
/// grows with the attempt count (doubling from opt.isolateBackoffMs, capped
/// at 5 s before jitter); the jitter fraction derives from (opt.seed,
/// output) ONLY - not the attempt ordinal and not the transport - so the
/// same output retries on the same schedule whether its failures came from
/// a local subprocess or a TCP agent, and retry timing never feeds back
/// into the pure per-output computation.
double retryBackoffSeconds(const SysecoOptions& opt, std::uint32_t output,
                           int failedAttempts);

class NetlistAnalysis;

/// The pure per-output fleet task: rectify `output` of `base` against
/// `spec` under sanitized worker `options`, exactly as a local speculative
/// worker would, and return the extracted patch. Shared analyses may be
/// passed to amortize cone work across tasks on the same case (the agent
/// caches them per case); null pointers make the engine build its own.
/// Used by the --serve-worker agent and by the supervisor's degraded
/// in-process path, which is what keeps the two bit-identical.
Result<WorkerPatch> runFleetTask(const Netlist& base, const Netlist& spec,
                                 const SysecoOptions& options,
                                 std::uint32_t output,
                                 const std::vector<std::uint32_t>& protect,
                                 const NetlistAnalysis* baseAnalysis,
                                 const NetlistAnalysis* specAnalysis);

}  // namespace syseco
