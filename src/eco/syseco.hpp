#pragma once
// syseco - the paper's rectification engine (symbolic sampling in ECO).
//
// Given the optimized implementation C and the lightly-synthesized revised
// specification C', RewireRectification (paper §5.2) iterates the failing
// output pairs in increasing cone complexity and, per output:
//
//  1. builds a sampling domain from error-domain assignments (§5.1),
//  2. enumerates feasible rectification point-sets through the
//     characteristic function H(t) = forall z exists y (h(z,y,t) == f'(z))
//     over mux-parameterized pin selections (§4.2, Figure 2),
//  3. ranks candidate rewiring nets from both C and C' with the structural
//     filter + error-domain utility heuristic (§4.3),
//  4. computes the characteristic function Xi(c) of all valid rewire
//     operations via Theorem 1's L/U implications (§4.4, Figure 3),
//  5. validates chosen rewires with a resource-constrained SAT solver;
//     counterexamples refine the sampling domain (CEGAR).
//
// Global context: every applied rewire is validated on *all* outputs its
// pins reach, so a candidate that damages already-rectified logic is
// pruned, and a cheap simulation screen favors candidates that fix other
// failing outputs along the way. Trivial candidates (a pin's existing
// driver) are always present, letting H(t) over-approximate m. A final
// sweeping pass merges patch gates with functionally equivalent existing
// nets, and an output is always rectifiable by falling back to rewiring it
// to a clone of its revised cone (completeness, Proposition 1).

#include <cstdint>

#include "eco/patch.hpp"
#include "netlist/netlist.hpp"

namespace syseco {

struct SysecoOptions {
  std::size_t numSamples = 64;       ///< sampling-domain size N
  int maxPoints = 3;                 ///< m: max rectification points per try
  std::size_t maxCandidatePins = 16; ///< M: pins considered per output
  std::size_t maxRewireNets = 16;    ///< K: candidate nets per point
  std::size_t maxPointSets = 8;      ///< point-sets tried per m
  std::size_t maxChoices = 12;       ///< rewire choices tried per point-set
  int maxRefineIters = 6;            ///< CEGAR rounds per output
  std::int64_t validationBudget = 500000;  ///< SAT conflicts per validation
  std::int64_t samplingBudget = 100000;    ///< SAT conflicts for sampling
  std::size_t bddNodeLimit = 1u << 22;

  bool useErrorDomainSampling = true;  ///< ablation B: error vs uniform
  bool useUtilityHeuristic = true;     ///< ablation C: utility ranking
  bool includeTrivialCandidate = true; ///< ablation C: trivial candidates
  bool enableSweeping = true;          ///< §5.2 patch-input refinement
  /// Rectification-function synthesis (this reproduction's implementation
  /// of the paper's "future work ... rectification logic synthesis"): when
  /// no existing net realizes a point's required function, try small
  /// algebraic combinations of the strongest candidates.
  bool synthesizeFunctions = true;
  bool levelDriven = false;            ///< Table 3: timing-aware selection

  bool verbose = false;  ///< trace the per-output search to stderr

  std::uint64_t seed = 1;
};

/// Extra run telemetry (ablation benches report these).
struct SysecoDiagnostics {
  std::size_t outputsRectified = 0;
  std::size_t outputsViaRewire = 0;    ///< solved by interior-pin rewiring
  std::size_t outputsViaFallback = 0;  ///< solved by output-cone cloning
  std::size_t candidatesValidated = 0; ///< SAT validations run
  std::size_t candidatesRefuted = 0;   ///< sampling false positives caught by SAT
  std::size_t candidatesScreenRejected = 0;  ///< caught by the sim screen
  std::size_t refinementRounds = 0;
  std::size_t sweepMerges = 0;
  // Phase timing (seconds).
  double secondsSampling = 0.0;    ///< error-sample enumeration + rechecks
  double secondsSymbolic = 0.0;    ///< H(t) / Xi(c) BDD work + ranking
  double secondsScreening = 0.0;   ///< simulation screens of choices
  double secondsValidation = 0.0;  ///< SAT validation of choices
  double secondsFallback = 0.0;    ///< matched cone cloning
  double secondsSweep = 0.0;       ///< patch-input refinement
  double secondsVerify = 0.0;      ///< final full verification
};

EcoResult runSyseco(const Netlist& impl, const Netlist& spec,
                    const SysecoOptions& options = {},
                    SysecoDiagnostics* diagnostics = nullptr);

}  // namespace syseco
