#pragma once
// syseco - the paper's rectification engine (symbolic sampling in ECO).
//
// Given the optimized implementation C and the lightly-synthesized revised
// specification C', RewireRectification (paper §5.2) iterates the failing
// output pairs in increasing cone complexity and, per output:
//
//  1. builds a sampling domain from error-domain assignments (§5.1),
//  2. enumerates feasible rectification point-sets through the
//     characteristic function H(t) = forall z exists y (h(z,y,t) == f'(z))
//     over mux-parameterized pin selections (§4.2, Figure 2),
//  3. ranks candidate rewiring nets from both C and C' with the structural
//     filter + error-domain utility heuristic (§4.3),
//  4. computes the characteristic function Xi(c) of all valid rewire
//     operations via Theorem 1's L/U implications (§4.4, Figure 3),
//  5. validates chosen rewires with a resource-constrained SAT solver;
//     counterexamples refine the sampling domain (CEGAR).
//
// Global context: every applied rewire is validated on *all* outputs its
// pins reach, so a candidate that damages already-rectified logic is
// pruned, and a cheap simulation screen favors candidates that fix other
// failing outputs along the way. Trivial candidates (a pin's existing
// driver) are always present, letting H(t) over-approximate m. A final
// sweeping pass merges patch gates with functionally equivalent existing
// nets, and an output is always rectifiable by falling back to rewiring it
// to a clone of its revised cone (completeness, Proposition 1).

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bdd/bdd.hpp"
#include "eco/patch.hpp"
#include "netlist/netlist.hpp"
#include "util/status.hpp"
#include "verify/audit.hpp"
#include "verify/oracle.hpp"

namespace syseco {

struct OutputReport;

/// Snapshot handed to SysecoOptions::checkpointHook after each per-output
/// rectification completes. Everything referenced lives only for the call;
/// a journaling hook serializes what it needs (the working netlist via
/// Netlist::dumpRaw, the tracker via PatchTracker::state).
struct RunCheckpoint {
  const OutputReport& report;                ///< the just-finished output
  const std::vector<OutputReport>& reports;  ///< cumulative, restored included
  const Netlist& working;                    ///< current patched netlist
  const PatchTracker& tracker;               ///< patch accounting so far
  std::size_t completed = 0;  ///< reports so far (restored included)
  std::size_t planned = 0;    ///< outputs in the processing plan
  std::int64_t conflictsUsed = 0;  ///< cumulative run total (restored incl.)
  std::int64_t bddNodesUsed = 0;   ///< cumulative run total (restored incl.)
};

/// State adopted from a validated journal: the engine skips the outputs
/// already proven rectified and re-enters the cascade for the remainder,
/// replaying the journaled processing order (the order was computed against
/// the *unpatched* netlist; re-sorting against the restored one would
/// diverge from the uninterrupted run).
struct ResumePlan {
  std::size_t failingOutputsBefore = 0;
  std::vector<std::uint32_t> order;    ///< journaled processing order
  std::vector<OutputReport> restored;  ///< reports adopted from the journal
  std::int64_t conflictsUsed = 0;      ///< totals at the adopted checkpoint
  std::int64_t bddNodesUsed = 0;
  PatchTracker::State tracker;
  /// The original unpatched implementation (CRC-verified against the
  /// journal). Speculative per-output workers always search from this base
  /// snapshot, so a resumed run reproduces the uninterrupted run's worker
  /// results exactly. Empty (no outputs) on hand-built plans, which forces
  /// the sequential path.
  Netlist base;
};

/// How candidate rewiring nets are ranked before validation (§4.3).
///  * kSharpSat: measured error-domain coverage - the satisfying fraction
///    of each candidate's signature difference restricted to the error
///    domain, computed by #SAT (Bdd::satCount) over the sampling-domain
///    functions. Order-equivalent to kStructural on complete signatures
///    (the fractions are the same measure the word-level heuristic
///    approximates), so the default changes no verdicts; it also surfaces
///    the measured fractions for diagnostics.
///  * kStructural: the legacy word-level popcount heuristic.
enum class RankMode : std::uint8_t { kStructural = 0, kSharpSat = 1 };

/// Minato-Morreale ISOP patch minimization in the sweep phase.
///  * kAuto: follow bddReorder - on unless the engine runs in its legacy
///    bit-identical mode (bddReorder == kOff).
///  * kOn / kOff: force.
enum class PatchMinimize : std::uint8_t { kAuto = 0, kOn = 1, kOff = 2 };

struct SysecoOptions {
  std::size_t numSamples = 64;       ///< sampling-domain size N
  int maxPoints = 3;                 ///< m: max rectification points per try
  std::size_t maxCandidatePins = 16; ///< M: pins considered per output
  std::size_t maxRewireNets = 16;    ///< K: candidate nets per point
  std::size_t maxPointSets = 8;      ///< point-sets tried per m
  std::size_t maxChoices = 12;       ///< rewire choices tried per point-set
  int maxRefineIters = 6;            ///< CEGAR rounds per output
  std::int64_t validationBudget = 500000;  ///< SAT conflicts per validation
  std::int64_t samplingBudget = 100000;    ///< SAT conflicts for sampling
  std::size_t bddNodeLimit = 1u << 22;

  // --- BDD engine tuning ---------------------------------------------------
  /// Dynamic variable reordering (sifting) for the monolithic-cone BDD
  /// managers. The engine's own sampling-domain managers always keep
  /// identity order (sample-index variables carry no structure for
  /// sifting); the knob governs the certification oracle's BDD route,
  /// which inherits it unless OracleOptions overrides. kOff restores the
  /// pre-reordering engine bit-for-bit (node creation order, budget trip
  /// points, governor charges) and switches PatchMinimize::kAuto off, so
  /// `--bdd-reorder=off` reproduces legacy verdict records exactly.
  BddReorder bddReorder = BddReorder::kSift;
  std::uint32_t bddCacheBits = 0;       ///< computed-cache 2^bits; 0 = default
  std::size_t bddReorderThreshold = 0;  ///< auto-reorder arm point; 0 = default
  RankMode rankMode = RankMode::kSharpSat;
  PatchMinimize minimizePatch = PatchMinimize::kAuto;

  bool useErrorDomainSampling = true;  ///< ablation B: error vs uniform
  bool useUtilityHeuristic = true;     ///< ablation C: utility ranking
  bool includeTrivialCandidate = true; ///< ablation C: trivial candidates
  bool enableSweeping = true;          ///< §5.2 patch-input refinement
  /// Rectification-function synthesis (this reproduction's implementation
  /// of the paper's "future work ... rectification logic synthesis"): when
  /// no existing net realizes a point's required function, try small
  /// algebraic combinations of the strongest candidates.
  bool synthesizeFunctions = true;
  bool levelDriven = false;            ///< Table 3: timing-aware selection

  bool verbose = false;  ///< trace the per-output search to stderr

  std::uint64_t seed = 1;

  /// Worker threads for per-output rectification. On unlimited runs (no
  /// deadline or budget) the engine searches outputs speculatively from
  /// the unpatched base netlist and commits results in plan order, so the
  /// patch, reports and journal are bit-identical for every jobs value.
  /// Runs with a deadline or budget use fair-share slicing, which is
  /// inherently schedule-dependent; they ignore jobs and stay sequential.
  std::size_t jobs = 1;

  // --- Fault-contained subprocess isolation -------------------------------
  /// Run each per-output rectification task in a forked, rlimit-sandboxed
  /// worker subprocess supervised by the main process. A worker that
  /// crashes, leaks, hangs or babbles is classified (WorkerExitCause),
  /// retried with capped exponential backoff, and after
  /// `isolateMaxAttempts` failures its output is quarantined: it degrades
  /// to the guaranteed cone-clone fallback instead of aborting the run.
  /// Successful isolated runs are bit-identical to in-process `jobs` runs
  /// (the same plan-ordered speculative commits replay the same worker
  /// results). Like `jobs`, isolation requires an unlimited run; governed
  /// runs ignore it and stay sequential. None of the isolate knobs shape
  /// the search, so they are excluded from the resume fingerprint.
  bool isolate = false;
  int isolateMaxAttempts = 3;        ///< worker attempts before quarantine
  double isolateWallSeconds = 120.0; ///< per-attempt wall deadline (0 = off)
  double isolateCpuSeconds = 0.0;    ///< worker RLIMIT_CPU (0 = inherit)
  std::uint64_t isolateMemoryBytes = 0;  ///< worker RLIMIT_AS (0 = inherit)
  double isolateBackoffMs = 100.0;   ///< base retry backoff (doubled, capped)

  // --- Distributed worker fleet -------------------------------------------
  /// TCP generalization of the isolation transport: per-output tasks are
  /// sharded across `syseco --serve-worker` agent processes listed here as
  /// "host:port" endpoints. Every in-flight task holds a deadline-bearing
  /// lease renewed by agent heartbeats; a task whose worker disconnects,
  /// stops heartbeating or overruns its lease is reassigned, its failure
  /// classified into the same taxonomy (the network causes: conn-refused,
  /// conn-reset, frame-truncated, lease-expired) and retried with the same
  /// capped backoff and quarantine rules as --isolate. Duplicate results
  /// from a reassigned-then-returned task are rejected by task epoch. When
  /// fewer than `fleetMinWorkers` agents remain usable the run degrades to
  /// in-process execution instead of failing. Successful fleet runs are
  /// bit-identical to in-process `jobs` runs (same plan-ordered commits of
  /// the same pure per-output results). Mutually exclusive with `isolate`;
  /// like it, governed runs ignore the fleet and stay sequential, and none
  /// of these knobs enter the resume fingerprint.
  std::vector<std::string> workers;  ///< agent endpoints, "host:port"
  double fleetLeaseSeconds = 10.0;   ///< task lease; heartbeats renew it
  int fleetConnectTimeoutMs = 2000;  ///< per-connect deadline
  int fleetMinWorkers = 1;           ///< usable agents below this: degrade

  // --- Certification oracle + invariant auditing --------------------------
  /// Tri-modal certification (verify/oracle.hpp) replaces the legacy
  /// single-route final verification: every label-matched output is
  /// re-proven through SAT (fresh miter), BDD (within node budget) and
  /// simulation, and a refuted output is quarantined to the cone-clone
  /// fallback instead of shipped wrong. `oracle.enabled = false` reverts
  /// to the legacy SAT-only check. Neither the oracle knobs nor the audit
  /// level shape the search, so - like the isolate knobs - they are
  /// excluded from the resume fingerprint.
  OracleOptions oracle;
  /// Where oracle disagreements are packaged as atomic repro bundles
  /// (netlists, patch, seed, minimized counterexample, build info).
  /// Empty: diagnose and quarantine, but write no bundle.
  std::string reproDir;
  /// Structural invariant audits (verify/audit.hpp) at engine phase
  /// boundaries: post-resume-restore and after every patch commit
  /// (post-patch-commit in-process, post-isolate-decode under --isolate);
  /// kParanoid deepens the checks and adds post-sweep and pre-verify
  /// sites. A failed audit aborts the run with a structured
  /// StatusError{kInternal} naming every violated invariant.
  AuditLevel audit = AuditLevel::kOff;

  // --- Resource governor (whole-run ceilings; 0 = unlimited) --------------
  // The run always terminates with a correct patch: outputs whose share of
  // the budget runs dry degrade to the guaranteed cone-clone fallback
  // (Proposition 1) instead of failing. Each failing output receives a
  // fair slice of whatever remains when its turn comes.
  double deadlineSeconds = 0.0;          ///< wall-clock deadline for the run
  std::int64_t totalConflictBudget = 0;  ///< SAT conflicts across all phases
  std::int64_t totalBddNodeBudget = 0;   ///< BDD nodes across all managers

  // --- Crash-safe journaling hooks ----------------------------------------
  /// Called once, after failing-output detection and ordering, with the
  /// planned processing order and the failing-output count (a journaling
  /// caller records them in its run-start record). Not called on resume.
  std::function<void(const std::vector<std::uint32_t>& order,
                     std::size_t failingOutputsBefore)>
      planHook;
  /// Called after every completed per-output rectification. Returning
  /// false stops the run cleanly before the next output (the interrupted
  /// path: sweeping and final verification are skipped, success stays
  /// false, and SysecoDiagnostics::interrupted is set).
  std::function<bool(const RunCheckpoint&)> checkpointHook;
  /// When set, the run resumes from the adopted journal state instead of
  /// detecting failing outputs itself. The `impl` netlist passed to
  /// runSyseco must be the restored working snapshot the plan refers to.
  /// Borrowed pointer; must outlive the run.
  const ResumePlan* resumePlan = nullptr;
  /// Called on every fleet lifecycle event (worker failures classified into
  /// the taxonomy, stale-epoch rejections, worker death, degradation to
  /// in-process execution). A journaling caller appends them as "fleet"
  /// records; timing-sensitive by nature, so they never enter the
  /// bit-compared verdict records.
  std::function<void(const struct FleetEvent&)> fleetEventHook;
};

/// One fleet lifecycle event (see SysecoOptions::fleetEventHook).
struct FleetEvent {
  std::string kind;    ///< taxonomy cause or lifecycle tag (worker-dead, ...)
  std::string worker;  ///< "host:port" endpoint; empty for fleet-wide events
  std::uint32_t output = 0;  ///< task output index; 0 for fleet-wide events
  int attempt = 0;           ///< failed-attempt ordinal; 0 when n/a
  std::string detail;
};

/// Rejects nonsensical configurations (zero samples, non-positive point
/// counts, empty budgets, negative deadlines) with kInvalidInput before the
/// search can wander into undefined behavior.
Status validateSysecoOptions(const SysecoOptions& options);

/// How one output ended up correct.
enum class OutputRectStatus {
  kExact,     ///< rectified with full-strength search, no resource trouble
  kDegraded,  ///< rectified, but only after staged degradation or a trip
  kFallback,  ///< rewired to a clone of its revised cone (Proposition 1)
};

inline const char* outputRectStatusName(OutputRectStatus s) {
  switch (s) {
    case OutputRectStatus::kExact: return "exact";
    case OutputRectStatus::kDegraded: return "degraded";
    case OutputRectStatus::kFallback: return "fallback";
  }
  return "unknown";
}

/// How a rectification worker (in-process thread or isolated subprocess)
/// last failed. The shared failure taxonomy of the isolation supervisor
/// and the in-process parallel path; kNone means no attempt failed.
enum class WorkerExitCause {
  kNone,          ///< clean: no worker attempt failed for this output
  kCrash,         ///< abnormal exit, fatal signal, or escaped exception
  kOom,           ///< allocation failure took down the whole attempt
  kCpuTimeout,    ///< RLIMIT_CPU tripped (SIGXCPU)
  kWallTimeout,   ///< supervisor wall deadline; SIGTERM->SIGKILL delivered
  kGarbageIpc,    ///< response frame undecodable or semantically invalid
  kFaultInjected, ///< an injected fault the worker could still report
  // Fleet-transport causes (--workers): the same retry/quarantine rules
  // apply; only the classification is network-specific.
  kConnRefused,    ///< TCP connect to the agent failed
  kConnReset,      ///< connection dropped between request and result
  kFrameTruncated, ///< stream ended mid-frame
  kLeaseExpired,   ///< no heartbeat or result within the task lease
  kStaleEpoch,     ///< duplicate result from a superseded task epoch
};

inline const char* workerExitCauseName(WorkerExitCause c) {
  switch (c) {
    case WorkerExitCause::kNone: return "ok";
    case WorkerExitCause::kCrash: return "crash";
    case WorkerExitCause::kOom: return "oom";
    case WorkerExitCause::kCpuTimeout: return "cpu-timeout";
    case WorkerExitCause::kWallTimeout: return "wall-timeout";
    case WorkerExitCause::kGarbageIpc: return "garbage-ipc";
    case WorkerExitCause::kFaultInjected: return "fault-injected";
    case WorkerExitCause::kConnRefused: return "conn-refused";
    case WorkerExitCause::kConnReset: return "conn-reset";
    case WorkerExitCause::kFrameTruncated: return "frame-truncated";
    case WorkerExitCause::kLeaseExpired: return "lease-expired";
    case WorkerExitCause::kStaleEpoch: return "stale-epoch";
  }
  return "unknown";
}

/// Inverse of workerExitCauseName; nullopt for names from a newer schema.
inline std::optional<WorkerExitCause> workerExitCauseFromName(
    std::string_view name) {
  for (WorkerExitCause c :
       {WorkerExitCause::kNone, WorkerExitCause::kCrash, WorkerExitCause::kOom,
        WorkerExitCause::kCpuTimeout, WorkerExitCause::kWallTimeout,
        WorkerExitCause::kGarbageIpc, WorkerExitCause::kFaultInjected,
        WorkerExitCause::kConnRefused, WorkerExitCause::kConnReset,
        WorkerExitCause::kFrameTruncated, WorkerExitCause::kLeaseExpired,
        WorkerExitCause::kStaleEpoch}) {
    if (name == workerExitCauseName(c)) return c;
  }
  return std::nullopt;
}

/// Per-output account of the governed search.
struct OutputReport {
  std::uint32_t output = 0;  ///< implementation output index
  std::string name;
  OutputRectStatus status = OutputRectStatus::kExact;
  /// Resource that tripped while this output was being processed
  /// (kOk when the search ran to completion unimpeded).
  StatusCode limit = StatusCode::kOk;
  std::int64_t conflictsUsed = 0;   ///< SAT conflicts charged to this output
  std::int64_t bddNodesUsed = 0;    ///< BDD nodes charged to this output
  double seconds = 0.0;
  int degradeSteps = 0;  ///< candidate-space halvings forced by blowups
  /// Worker attempts that *failed* for this output (0 on a clean first-try
  /// success in any mode, so reports stay bit-identical across --jobs and
  /// --isolate). A quarantined output carries isolateMaxAttempts here.
  int workerFailedAttempts = 0;
  WorkerExitCause workerExitCause = WorkerExitCause::kNone;  ///< last failure
};

/// Extra run telemetry (ablation benches report these).
struct SysecoDiagnostics {
  std::size_t outputsRectified = 0;
  std::size_t outputsViaRewire = 0;    ///< solved by interior-pin rewiring
  std::size_t outputsViaFallback = 0;  ///< solved by output-cone cloning
  std::size_t candidatesValidated = 0; ///< SAT validations run
  std::size_t candidatesRefuted = 0;   ///< sampling false positives caught by SAT
  std::size_t candidatesScreenRejected = 0;  ///< caught by the sim screen
  std::size_t refinementRounds = 0;
  std::size_t sweepMerges = 0;
  std::size_t isopRewrites = 0;  ///< patch cones rebuilt as two-level covers
  std::size_t isopGatesSaved = 0;  ///< net gate reduction from those rewrites
  // Phase timing (seconds).
  double secondsSampling = 0.0;    ///< error-sample enumeration + rechecks
  double secondsSymbolic = 0.0;    ///< H(t) / Xi(c) BDD work + ranking
  double secondsScreening = 0.0;   ///< simulation screens of choices
  double secondsValidation = 0.0;  ///< SAT validation of choices
  double secondsFallback = 0.0;    ///< matched cone cloning
  double secondsSweep = 0.0;       ///< patch-input refinement
  double secondsVerify = 0.0;      ///< final full verification

  // Certification-oracle + audit accounting (empty when the oracle is
  // disabled / audits are off).
  std::vector<OutputCertificate> certificates;  ///< final per-output verdicts
  std::vector<OracleDisagreement> oracleDisagreements;
  std::vector<AuditReport> audits;  ///< one entry per audited boundary
  double secondsAudit = 0.0;        ///< total time spent auditing

  // Resource-governor accounting.
  std::vector<OutputReport> outputs;  ///< one entry per processed output
  StatusCode runLimit = StatusCode::kOk;  ///< first whole-run trip, if any
  std::int64_t conflictsUsed = 0;         ///< total SAT conflicts charged
  std::int64_t bddNodesUsed = 0;          ///< total BDD nodes charged

  /// True when a checkpoint hook stopped the run early (journaled
  /// interruption). Sweeping and final verification did not happen; the
  /// journal is the authoritative record of progress.
  bool interrupted = false;

  /// True when a resource limit forced at least one output off the
  /// full-strength search path - the "degraded run" signal surfaced by the
  /// CLI exit code. Plain fallbacks chosen on merit do not count.
  bool resourceDegraded() const {
    if (runLimit != StatusCode::kOk) return true;
    for (const OutputReport& r : outputs)
      if (r.limit != StatusCode::kOk) return true;
    return false;
  }
};

/// Runs the engine; throws StatusError{kInvalidInput} on a nonsensical
/// configuration (see validateSysecoOptions). Resource exhaustion never
/// fails the run - it degrades per-output (see SysecoDiagnostics::outputs).
EcoResult runSyseco(const Netlist& impl, const Netlist& spec,
                    const SysecoOptions& options = {},
                    SysecoDiagnostics* diagnostics = nullptr);

/// Non-throwing variant: kInvalidInput instead of undefined behavior or an
/// exception when the configuration is rejected.
Result<EcoResult> runSysecoChecked(const Netlist& impl, const Netlist& spec,
                                   const SysecoOptions& options = {},
                                   SysecoDiagnostics* diagnostics = nullptr);

}  // namespace syseco
