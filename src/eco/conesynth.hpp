#pragma once
// "Commercial tool" proxy baseline: cone replication.
//
// For every failing output, the engine clones the revised specification's
// entire output cone into the implementation (cut only at primary inputs)
// and re-drives the output from the clone. Shared spec logic is
// instantiated once across outputs. This is the structurally naive
// reference point the paper's Table 2 uses a commercial tool's default
// setting for: always correct, fast, and with the largest patches.

#include "eco/patch.hpp"
#include "netlist/netlist.hpp"

namespace syseco {

EcoResult runConeSynth(const Netlist& impl, const Netlist& spec,
                       std::uint64_t seed = 1);

}  // namespace syseco
