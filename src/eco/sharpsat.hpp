#pragma once
// #SAT-driven candidate ranking.
//
// The §4.3 utility heuristic orders candidate rewiring nets by how often
// their sampled signature differs from the target pin's inside the error
// domain, penalized for differing where observable correct behavior would
// break. The word-level implementation popcounts masked signature words.
// This module computes the same measure as a model-counting query: an
// N-bit signature is the truth table of a sampling-domain function over
// the z variables (paper §5.1), so "how much of the error domain does
// this candidate flip" is the satisfying fraction of
//
//   (cand XOR pin) AND E
//
// answered exactly by Bdd::satCount. On complete signatures the count is
// the popcount, and counts up to 2^52 are exact in double, so the integer
// rank key derived here equals the word-level key bit for bit: making
// RankMode::kSharpSat the default changes no ordering and no verdicts,
// while the measured coverage fractions become available to diagnostics
// and the same query generalizes to partial/weighted domains.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bdd/bdd.hpp"
#include "sim/simulator.hpp"

namespace syseco {

/// Measured error-domain coverage of one candidate signature.
struct CoverageScore {
  /// Satisfying fraction of (cand ^ pin) & E over the error domain:
  /// exactly the §4.3 rectification utility.
  double errorCoverage = 0.0;
  /// Satisfying fraction of (cand ^ pin) & correct & observable over the
  /// observable correct domain (0 when that domain is empty).
  double breakRisk = 0.0;
  /// Integer rank key: #error-domain flips - 2 * #observable correct
  /// flips. Equals the word-level agreement key exactly.
  std::ptrdiff_t rankKey = 0;
};

/// Scores candidate signatures against one pin via sampling-domain model
/// counting. One instance serves one candidate shortlist: the pin
/// signature and domain masks are fixed at construction, score() is
/// called per candidate. Deterministic: a pure function of its inputs.
class SharpSatRanker {
 public:
  /// Masks follow the candidateNets conventions: all vectors span the
  /// same simulation word count (taken from errMask); an empty
  /// obsFullMask means the pin is observable everywhere.
  SharpSatRanker(const Signature& pinSig,
                 const std::vector<std::uint64_t>& errMask,
                 const std::vector<std::uint64_t>& correctMask,
                 const std::vector<std::uint64_t>& obsFullMask);

  CoverageScore score(const Signature& candSig);

 private:
  /// Fresh manager with the domain functions rebuilt. The arena is
  /// append-only (no GC), so after enough score() calls the dead
  /// truth-table BDDs are dropped wholesale instead of accumulating.
  void rebuild();

  std::vector<std::uint64_t> pinBits_;         // padded to 2^numZ samples
  std::vector<std::uint64_t> errBits_;
  std::vector<std::uint64_t> obsCorrectBits_;  // correct & observable
  std::size_t words_ = 0;                      // live (unpadded) words
  std::uint32_t numZ_ = 0;
  double errCount_ = 0.0;
  double obsCorrectCount_ = 0.0;

  std::unique_ptr<Bdd> mgr_;
  std::vector<std::uint32_t> zVars_;
  Bdd::Ref err_ = Bdd::kFalse;
  Bdd::Ref obsCorrect_ = Bdd::kFalse;
};

}  // namespace syseco
