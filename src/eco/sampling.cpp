#include "eco/sampling.hpp"

#include <bit>

#include "util/check.hpp"

namespace syseco {

std::uint32_t SampleSet::numZVars() const {
  SYSECO_CHECK(!patterns_.empty());
  std::uint32_t z = 0;
  while ((std::size_t{1} << z) < patterns_.size()) ++z;
  return z == 0 ? 1 : z;
}

Simulator simulateOnSamples(const Netlist& netlist, const Netlist& owner,
                            const SampleSet& samples, Rng& rng) {
  Simulator sim(netlist, samples.simWords());
  if (&netlist == &owner) {
    sim.loadPatterns(samples.patterns());
  } else {
    // Translate each pattern by input label.
    std::vector<InputPattern> translated;
    translated.reserve(samples.count());
    // Precompute the label map once.
    std::vector<std::uint32_t> ownerIdx(netlist.numInputs(), kNullId);
    for (std::uint32_t i = 0; i < netlist.numInputs(); ++i)
      ownerIdx[i] = owner.findInput(netlist.inputName(i));
    for (const InputPattern& p : samples.patterns()) {
      InputPattern q(netlist.numInputs(), 0);
      for (std::uint32_t i = 0; i < netlist.numInputs(); ++i)
        q[i] = ownerIdx[i] != kNullId ? p[ownerIdx[i]] : (rng.flip() ? 1 : 0);
      translated.push_back(std::move(q));
    }
    sim.loadPatterns(translated);
  }
  sim.run();
  return sim;
}

std::vector<std::uint64_t> errorMask(const Signature& implOut,
                                     const Signature& specOut,
                                     const SampleSet& samples) {
  std::vector<std::uint64_t> mask(implOut.size(), 0);
  for (std::size_t w = 0; w < mask.size(); ++w)
    mask[w] = implOut[w] ^ specOut[w];
  // Only genuine (non-padding) samples count.
  const std::size_t n = samples.count();
  for (std::size_t w = 0; w < mask.size(); ++w) {
    const std::size_t lo = w * 64;
    if (lo >= n) {
      mask[w] = 0;
    } else if (n - lo < 64) {
      mask[w] &= (std::uint64_t{1} << (n - lo)) - 1;
    }
  }
  return mask;
}

std::size_t countBits(const std::vector<std::uint64_t>& words) {
  std::size_t n = 0;
  for (std::uint64_t w : words) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

}  // namespace syseco
