#include "eco/exactfix.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "bdd/bdd.hpp"
#include "cnf/encode.hpp"
#include "eco/matching.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace syseco {

namespace {

/// Exact BDD of a cone over the given PI variable mapping; pins listed in
/// `freePin` evaluate to `yRef` instead of their driving net. `netBdd` is
/// caller-owned (cleared here) so a root provider can keep the in-flight
/// cone live across reorders.
Bdd::Ref buildConeBdd(Bdd& mgr, const Netlist& nl, NetId root,
                      const std::unordered_map<std::uint32_t,
                                               std::uint32_t>& piVar,
                      const Sink* freePin, Bdd::Ref yRef,
                      std::unordered_map<NetId, Bdd::Ref>& netBdd) {
  netBdd.clear();
  for (GateId g : nl.coneGates({root})) {
    const auto& gate = nl.gate(g);
    std::vector<Bdd::Ref> in;
    in.reserve(gate.fanins.size());
    for (std::size_t port = 0; port < gate.fanins.size(); ++port) {
      const NetId f = gate.fanins[port];
      Bdd::Ref v;
      if (auto it = netBdd.find(f); it != netBdd.end()) {
        v = it->second;
      } else {
        const auto& net = nl.net(f);
        SYSECO_CHECK(net.srcKind == Netlist::SourceKind::Input);
        v = mgr.var(piVar.at(net.srcIdx));
        // Memoized immediately: the map doubles as the root provider's
        // frontier, and a bare variable ref held only in `in` would be
        // detached by a reorder at the next operation boundary.
        netBdd.emplace(f, v);
      }
      if (freePin && freePin->gate == g &&
          freePin->port == static_cast<std::uint32_t>(port)) {
        v = yRef;
      }
      in.push_back(v);
    }
    // Pinned so a reorder at any operation boundary keeps the partial live
    // (it is reachable from no provider-visible root until committed).
    Bdd::ScopedRef r(mgr, Bdd::kFalse);
    switch (gate.type) {
      case GateType::Const0: r = Bdd::kFalse; break;
      case GateType::Const1: r = Bdd::kTrue; break;
      case GateType::Buf: r = in[0]; break;
      case GateType::Not: r = mgr.bNot(in[0]); break;
      case GateType::And: r = mgr.andMany(in); break;
      case GateType::Nand:
        r = mgr.andMany(in);
        r = mgr.bNot(r);
        break;
      case GateType::Or: r = mgr.orMany(in); break;
      case GateType::Nor:
        r = mgr.orMany(in);
        r = mgr.bNot(r);
        break;
      case GateType::Xor:
      case GateType::Xnor: {
        r = in[0];
        for (std::size_t k = 1; k < in.size(); ++k) r = mgr.bXor(r, in[k]);
        if (gate.type == GateType::Xnor) r = mgr.bNot(r);
        break;
      }
      case GateType::Mux: r = mgr.ite(in[0], in[2], in[1]); break;
    }
    netBdd[gate.out] = r;
  }
  if (auto it = netBdd.find(root); it != netBdd.end()) return it->second;
  const auto& net = nl.net(root);
  if (net.srcKind == Netlist::SourceKind::Input)
    return mgr.var(piVar.at(net.srcIdx));
  SYSECO_CHECK(false && "undriven cone root");
  return Bdd::kFalse;
}

}  // namespace

EcoResult runExactFix(const Netlist& impl, const Netlist& spec,
                      const ExactFixOptions& options,
                      ExactFixDiagnostics* diagnostics) {
  Timer timer;
  Rng rng(options.seed);
  ExactFixDiagnostics local;
  ExactFixDiagnostics& diag = diagnostics ? *diagnostics : local;

  EcoResult result;
  result.rectified = impl;
  PatchTracker tracker(result.rectified);
  Netlist& w = result.rectified;

  const std::vector<std::uint32_t> failing =
      findFailingOutputs(impl, spec, rng);
  result.failingOutputsBefore = failing.size();

  for (std::uint32_t o : failing) {
    const std::uint32_t op = spec.findOutput(impl.outputName(o));
    SYSECO_CHECK(op != kNullId);

    // Joint PI support of the pair, by implementation input index.
    std::vector<std::uint32_t> support = w.support(w.outputNet(o));
    for (std::uint32_t pi : spec.support(spec.outputNet(op))) {
      const std::uint32_t iw = w.findInput(spec.inputName(pi));
      if (iw != kNullId) support.push_back(iw);
    }
    std::sort(support.begin(), support.end());
    support.erase(std::unique(support.begin(), support.end()),
                  support.end());

    const std::vector<GateId> cone = w.coneGates({w.outputNet(o)});
    bool fixed = false;
    if (support.size() <= options.maxSupport &&
        cone.size() <= options.maxConeGates) {
      try {
        // Variable layout: one BDD var per support PI, plus y last.
        BddConfig bddCfg;
        bddCfg.nodeLimit = options.bddNodeLimit;
        bddCfg.reorder = options.bddReorder;
        if (options.bddCacheBits != 0) {
          bddCfg.cacheBits = options.bddCacheBits;
          bddCfg.maxCacheBits =
              std::max(bddCfg.maxCacheBits, options.bddCacheBits);
        }
        if (options.bddReorderThreshold != 0)
          bddCfg.reorderThreshold = options.bddReorderThreshold;
        Bdd mgr(static_cast<std::uint32_t>(support.size()) + 1, bddCfg);
        // Reorder roots: the in-flight cone build plus the spec function
        // held across the per-pin loop.
        std::unordered_map<NetId, Bdd::Ref> frontier;
        std::vector<Bdd::Ref> held;
        mgr.setRootProvider([&](std::vector<Bdd::Ref>& roots) {
          for (const auto& [net, ref] : frontier) roots.push_back(ref);
          roots.insert(roots.end(), held.begin(), held.end());
        });
        std::unordered_map<std::uint32_t, std::uint32_t> piVar;
        for (std::uint32_t i = 0; i < support.size(); ++i)
          piVar.emplace(support[i], i);
        const std::uint32_t yVar =
            static_cast<std::uint32_t>(support.size());

        // Spec inputs resolve through the same labels.
        std::unordered_map<std::uint32_t, std::uint32_t> specPiVar;
        for (std::uint32_t pi = 0; pi < spec.numInputs(); ++pi) {
          const std::uint32_t iw = w.findInput(spec.inputName(pi));
          if (iw != kNullId && piVar.count(iw))
            specPiVar.emplace(pi, piVar.at(iw));
        }
        const Bdd::Ref fPrime =
            buildConeBdd(mgr, spec, spec.outputNet(op), specPiVar, nullptr,
                         Bdd::kFalse, frontier);
        held.push_back(fPrime);
        frontier.clear();

        // Candidate pins: every sink pin in the cone (bounded), plus the
        // output itself.
        std::vector<Sink> pins{Sink{kNullId, o}};
        for (GateId g : cone) {
          for (std::uint32_t port = 0;
               port < w.gate(g).fanins.size(); ++port)
            pins.push_back(Sink{g, port});
        }
        if (pins.size() > options.maxCandidatePins)
          pins.resize(options.maxCandidatePins);

        for (const Sink& pin : pins) {
          ++diag.pinsTried;
          // Cross-operation temporaries are pinned: a reorder firing at
          // any operation boundary in this block must keep them live.
          Bdd::ScopedRef h(mgr, Bdd::kFalse);
          if (pin.isOutput()) {
            h = mgr.var(yVar);
          } else {
            // The free-pin literal must survive the cone build's operation
            // boundaries, so pin it before handing it in.
            Bdd::ScopedRef yRef(mgr, Bdd::kFalse);
            yRef = mgr.var(yVar);
            h = buildConeBdd(mgr, w, w.outputNet(o), piVar, &pin, yRef,
                             frontier);
            frontier.clear();
          }
          Bdd::ScopedRef A(mgr, Bdd::kFalse);
          Bdd::ScopedRef B(mgr, Bdd::kFalse);
          A = mgr.cofactor(h, yVar, true);
          A = mgr.bXnor(A, fPrime);
          B = mgr.cofactor(h, yVar, false);
          B = mgr.bXnor(B, fPrime);
          if (mgr.bOr(A, B) != Bdd::kTrue) continue;  // pin infeasible

          // Interval [L, U] = [!B, A]; synthesize an irredundant cover.
          Bdd::ScopedRef lower(mgr, Bdd::kFalse);
          lower = mgr.bNot(B);
          const std::vector<BddCube> cover = mgr.isop(lower, A);
          diag.coverCubes += cover.size();
          // Instantiate the two-level patch over the support inputs.
          std::vector<NetId> terms;
          std::unordered_map<std::uint32_t, NetId> invOf;
          for (const BddCube& cube : cover) {
            std::vector<NetId> lits;
            for (std::uint32_t v = 0; v < support.size(); ++v) {
              if (cube.lits[v] < 0) continue;
              const NetId in = w.inputNet(support[v]);
              if (cube.lits[v] == 1) {
                lits.push_back(in);
              } else {
                auto it = invOf.find(v);
                if (it == invOf.end()) {
                  it = invOf.emplace(v, w.addGate(GateType::Not, {in}))
                           .first;
                }
                lits.push_back(it->second);
              }
            }
            if (lits.empty()) {
              terms.push_back(w.addGate(GateType::Const1, {}));
            } else if (lits.size() == 1) {
              terms.push_back(lits[0]);
            } else {
              terms.push_back(w.addGate(GateType::And, lits));
            }
          }
          NetId r;
          if (terms.empty()) {
            r = w.addGate(GateType::Const0, {});
          } else if (terms.size() == 1) {
            r = terms[0];
          } else {
            r = w.addGate(GateType::Or, terms);
          }
          // The single-point condition is per-output; the pin may feed
          // other outputs through shared logic. Validate every reachable
          // output and roll back on collateral damage.
          const std::size_t mark = tracker.mark();
          tracker.rewire(pin, r);
          bool collateral = false;
          if (!pin.isOutput()) {
            std::unordered_set<GateId> seen;
            std::vector<NetId> stack{w.gate(pin.gate).out};
            std::vector<std::uint32_t> reachedOutputs;
            while (!stack.empty()) {
              const NetId n = stack.back();
              stack.pop_back();
              for (const Sink& s : w.net(n).sinks) {
                if (s.isOutput()) {
                  reachedOutputs.push_back(s.port);
                } else if (seen.insert(s.gate).second) {
                  stack.push_back(w.gate(s.gate).out);
                }
              }
            }
            PairEncoding pe(w, spec);
            for (std::uint32_t ro : reachedOutputs) {
              const std::uint32_t rop = spec.findOutput(w.outputName(ro));
              if (rop == kNullId) continue;
              if (pe.solveDiffSwept(ro, rop, 200000, rng) !=
                  Solver::Result::Unsat) {
                collateral = true;
                break;
              }
            }
          }
          if (collateral) {
            tracker.rollback(mark);
            continue;  // try the next pin
          }
          ++diag.outputsViaExactFix;
          fixed = true;
          break;
        }
      } catch (const BddLimitExceeded&) {
        // fall through to the clone fallback
      }
    }
    if (!fixed) {
      MatcherOptions mopts;
      Rng matchRng = rng.split();
      MatchedSpecCloner cloner(tracker, spec, mopts, matchRng);
      tracker.rewire(Sink{kNullId, o}, cloner.clone(spec.outputNet(op)));
      ++diag.outputsViaFallback;
    }
  }

  result.stats = tracker.finalize();
  result.success = verifyAllOutputs(result.rectified, spec);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace syseco
