#pragma once
// Journal resume: validation, independent re-certification and plan
// construction (the trust boundary of the crash-safe run journal).
//
// The journal is evidence, not truth. prepareResume() never adopts a
// recorded verdict: it restores the most recent intact checkpoint, checks
// it structurally against the *current* inputs, then re-proves every
// claimed output with a fresh unbounded SAT miter. A record that fails any
// step is demoted to "redo" with a line-accurate note - resume falls back
// to the next older record, and ultimately to a fresh run. A corrupt or
// stale journal therefore costs time, never correctness.

#include <cstdint>
#include <string>
#include <vector>

#include "eco/syseco.hpp"
#include "io/journal_io.hpp"
#include "netlist/netlist.hpp"
#include "util/status.hpp"

namespace syseco {

/// CRC-32 over the exact snapshot text - the journal's identity check for
/// the implementation and specification netlists.
std::uint32_t netlistCrc(const Netlist& nl);

/// Stable fingerprint of every option that shapes the search. Resuming
/// under different options would interleave two different searches into
/// one patch, so a mismatch rejects the journal. Hooks and the resume
/// plan itself are excluded (they don't affect the search).
std::string sysecoOptionsFingerprint(const SysecoOptions& o);

struct ResumeOutcome {
  bool adopted = false;  ///< a checkpoint survived re-certification
  Netlist netlist;       ///< restored working snapshot (when adopted)
  ResumePlan plan;       ///< hand to SysecoOptions::resumePlan (when adopted)
  std::vector<std::uint32_t> certified;  ///< outputs re-proven by fresh SAT
  std::size_t demotedRecords = 0;        ///< records demoted to redo
  std::vector<std::string> notes;        ///< diagnostics, line-accurate
};

/// Validates `journal` against the current inputs and re-certifies the
/// newest adoptable checkpoint. kInvalidInput when the journal belongs to
/// different inputs (netlist/options/seed fingerprint mismatch) - that is
/// a user error, not a recoverable corruption. An empty or fully-demoted
/// journal yields adopted=false: the caller runs fresh.
Result<ResumeOutcome> prepareResume(const Netlist& impl, const Netlist& spec,
                                    const SysecoOptions& options,
                                    const JournalContents& journal);

// --- Record builders (engine hook -> journal payload structs) -------------

JournalRunStart makeRunStartRecord(const Netlist& impl, const Netlist& spec,
                                   const SysecoOptions& options,
                                   const std::vector<std::uint32_t>& order,
                                   std::size_t failingOutputsBefore);

JournalOutputRecord makeOutputRecord(const RunCheckpoint& cp);

/// The certification oracle's per-output route verdicts, ready for
/// serializeVerdicts(). Deliberately timing-free: the payload must be
/// bit-identical across --jobs N, --isolate and --resume runs of the same
/// inputs.
JournalVerdicts makeVerdictsRecord(const SysecoDiagnostics& diag);

}  // namespace syseco
