#pragma once
// Exact single-point rectification baseline (the "functional prior work"
// family of paper §2: Madre et al. [9]'s Boolean-equation single-fault
// rectification, and the single-point synthesis setting of [13]/[19]).
//
// For every failing output the engine builds *exact* BDDs of the
// implementation cone h(x, y) (one candidate pin freed as y) and the
// revised function f'(x), and checks the classic single-point condition
//
//   forall x:  h(x,0) == f'(x)  OR  h(x,1) == f'(x)
//
// A feasible pin yields the rectification-function interval
// [L, U] = [not B, A] with A = (h|y=1 == f'), B = (h|y=0 == f'); the patch
// function is synthesized as an irredundant two-level AND-OR cover of the
// interval (Minato-Morreale ISOP) over the primary inputs.
//
// Strengths and weaknesses are the ones the paper ascribes to this family:
// exact and representation-independent, but (i) limited to one
// rectification point per output, (ii) the patch is fresh two-level logic
// rather than reused nets, and (iii) exact BDDs blow up on wide-support
// cones - in which case this engine falls back to match-aware cone
// cloning, like the others.

#include "bdd/bdd.hpp"
#include "eco/patch.hpp"
#include "netlist/netlist.hpp"

namespace syseco {

struct ExactFixOptions {
  std::size_t maxSupport = 18;       ///< max PI support for exact BDDs
  std::size_t maxConeGates = 1500;   ///< cone size guard
  std::size_t maxCandidatePins = 16; ///< pins tried per output
  std::size_t bddNodeLimit = 1u << 20;
  /// BDD engine tuning. Reordering defaults off here: ISOP covers (and
  /// therefore the synthesized patch shape) depend on the variable order,
  /// so the default keeps this baseline's patches stable; opting in trades
  /// that for wide-support cones surviving the node limit.
  BddReorder bddReorder = BddReorder::kOff;
  std::uint32_t bddCacheBits = 0;       ///< 0 = engine default
  std::size_t bddReorderThreshold = 0;  ///< 0 = engine default
  std::uint64_t seed = 1;
};

struct ExactFixDiagnostics {
  std::size_t outputsViaExactFix = 0;  ///< solved by single-point synthesis
  std::size_t outputsViaFallback = 0;  ///< cone cloned (support/size limits)
  std::size_t pinsTried = 0;
  std::size_t coverCubes = 0;          ///< total ISOP cubes synthesized
};

EcoResult runExactFix(const Netlist& impl, const Netlist& spec,
                      const ExactFixOptions& options = {},
                      ExactFixDiagnostics* diagnostics = nullptr);

}  // namespace syseco
