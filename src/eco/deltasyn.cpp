#include "eco/deltasyn.hpp"

#include "cnf/encode.hpp"
#include "eco/matching.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace syseco {

EcoResult runDeltaSyn(const Netlist& impl, const Netlist& spec,
                      const DeltaSynOptions& options) {
  Timer timer;
  Rng rng(options.seed);
  EcoResult result;
  result.rectified = impl;
  PatchTracker tracker(result.rectified);

  const std::vector<std::uint32_t> failing =
      findFailingOutputs(impl, spec, rng);
  result.failingOutputsBefore = failing.size();

  if (!failing.empty()) {
    MatcherOptions mopts;
    mopts.mode = options.matchMode;
    mopts.simWords = options.simWords;
    mopts.confirmBudget = options.matchBudget;
    mopts.candidatesPerNet = options.candidatesPerNet;
    mopts.allowComplementMatch = options.allowComplementMatch;
    // DeltaSyn only re-drives primary outputs, so pre-existing logic never
    // changes function and one cloner instance serves the whole run.
    MatchedSpecCloner cloner(tracker, spec, mopts, rng);
    for (std::uint32_t o : failing) {
      const std::uint32_t op = spec.findOutput(impl.outputName(o));
      SYSECO_CHECK(op != kNullId);
      tracker.rewire(Sink{kNullId, o}, cloner.clone(spec.outputNet(op)));
    }
  }

  result.stats = tracker.finalize();
  result.success = verifyAllOutputs(result.rectified, spec);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace syseco
