#include "eco/report.hpp"

#include <sstream>

#include "io/journal_io.hpp"
#include "util/build_info.hpp"
#include "util/journal.hpp"
#include "verify/oracle.hpp"

namespace syseco {

void writeRunReport(std::ostream& os, const std::string& engine,
                    const EcoResult& result, const SysecoDiagnostics& diag,
                    AuditLevel auditLevel, bool oracleEnabled, int exitCode) {
  os << "{\n";
  os << "  \"engine\": \"" << jsonEscape(engine) << "\",\n";
  os << "  \"build\": " << buildInfoJson("  ") << ",\n";
  os << "  \"success\": " << (result.success ? "true" : "false") << ",\n";
  os << "  \"degraded\": " << (diag.resourceDegraded() ? "true" : "false")
     << ",\n";
  os << "  \"exit_code\": " << exitCode << ",\n";
  os << "  \"run_limit\": \"" << statusCodeName(diag.runLimit) << "\",\n";
  os << "  \"failing_outputs\": " << result.failingOutputsBefore << ",\n";
  os << "  \"seconds\": " << result.seconds << ",\n";
  // "seconds" above is wall clock; the per-phase numbers below are summed
  // across worker threads, so their total exceeds wall under --jobs N.
  os << "  \"cpu_seconds\": "
     << (diag.secondsSampling + diag.secondsSymbolic + diag.secondsScreening +
         diag.secondsValidation + diag.secondsFallback + diag.secondsSweep +
         diag.secondsVerify)
     << ",\n";
  os << "  \"patch\": {\"inputs\": " << result.stats.inputs
     << ", \"outputs\": " << result.stats.outputs
     << ", \"gates\": " << result.stats.gates
     << ", \"nets\": " << result.stats.nets << "},\n";
  os << "  \"budget\": {\"conflicts_used\": " << diag.conflictsUsed
     << ", \"bdd_nodes_used\": " << diag.bddNodesUsed << "},\n";
  os << "  \"phase_cpu_seconds\": {"
     << "\"sampling\": " << diag.secondsSampling
     << ", \"symbolic\": " << diag.secondsSymbolic
     << ", \"screening\": " << diag.secondsScreening
     << ", \"validation\": " << diag.secondsValidation
     << ", \"fallback\": " << diag.secondsFallback
     << ", \"sweep\": " << diag.secondsSweep
     << ", \"verify\": " << diag.secondsVerify << "},\n";
  os << "  \"sweep\": {\"merges\": " << diag.sweepMerges
     << ", \"isop_rewrites\": " << diag.isopRewrites
     << ", \"isop_gates_saved\": " << diag.isopGatesSaved << "},\n";
  // Invariant audits: boundary count and findings (a written report means
  // every audit passed - failures abort the run - but the findings field
  // keeps the schema honest either way).
  os << "  \"audit\": {\"level\": \"" << auditLevelName(auditLevel)
     << "\", \"boundaries\": " << diag.audits.size()
     << ", \"seconds\": " << diag.secondsAudit << ", \"findings\": [";
  {
    bool first = true;
    for (const AuditReport& a : diag.audits)
      for (const AuditFinding& f : a.findings) {
        os << (first ? "" : ", ") << "{\"phase\": \"" << jsonEscape(a.phase)
           << "\", \"check\": \"" << jsonEscape(f.check)
           << "\", \"detail\": \"" << jsonEscape(f.detail) << "\"}";
        first = false;
      }
  }
  os << "]},\n";
  // Oracle certificates: per-output verdicts, deliberately timing-free so
  // reports from --jobs/--isolate/--resume runs diff clean after the
  // standard timing normalization.
  os << "  \"oracle\": {\"enabled\": " << (oracleEnabled ? "true" : "false")
     << ", \"disagreements\": " << diag.oracleDisagreements.size()
     << ", \"outputs\": [";
  for (std::size_t i = 0; i < diag.certificates.size(); ++i) {
    const OutputCertificate& c = diag.certificates[i];
    // Per-output BDD telemetry (deterministic for a fixed seed and
    // identical across --jobs/--isolate/--resume: certification runs
    // post-search in the main process).
    os << (i ? ", " : "") << "{\"output\": " << c.output << ", \"name\": \""
       << jsonEscape(c.name) << "\", \"sat\": \""
       << routeVerdictName(c.sat.verdict) << "\", \"bdd\": \""
       << routeVerdictName(c.bdd.verdict) << "\", \"sim\": \""
       << routeVerdictName(c.sim.verdict) << "\", \"certified\": "
       << (c.certified ? "true" : "false")
       << ", \"bdd_stats\": {\"peak_nodes\": " << c.bddStats.peakNodes
       << ", \"unique_hits\": " << c.bddStats.uniqueHits
       << ", \"cache_bits\": " << c.bddStats.cacheBitsNow
       << ", \"cache_hit_rate\": " << c.bddStats.cacheHitRate()
       << ", \"reorders\": " << c.bddStats.reorders
       << ", \"swaps\": " << c.bddStats.swaps << "}}";
  }
  os << "]},\n";
  os << "  \"outputs\": [";
  for (std::size_t i = 0; i < diag.outputs.size(); ++i) {
    const OutputReport& r = diag.outputs[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"output\": " << r.output << ", \"name\": \""
       << jsonEscape(r.name) << "\", \"status\": \""
       << outputRectStatusName(r.status) << "\", \"limit\": \""
       << statusCodeName(r.limit) << "\", \"conflicts_used\": "
       << r.conflictsUsed << ", \"bdd_nodes_used\": " << r.bddNodesUsed
       << ", \"seconds\": " << r.seconds
       << ", \"degrade_steps\": " << r.degradeSteps
       << ", \"attempts\": " << r.workerFailedAttempts
       << ", \"exit_cause\": \"" << workerExitCauseName(r.workerExitCause)
       << "\"}";
  }
  os << (diag.outputs.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
}

std::string runReportText(const std::string& engine, const EcoResult& result,
                          const SysecoDiagnostics& diag, AuditLevel auditLevel,
                          bool oracleEnabled, int exitCode) {
  std::ostringstream os;
  writeRunReport(os, engine, result, diag, auditLevel, oracleEnabled,
                 exitCode);
  return os.str();
}

}  // namespace syseco
