#pragma once
// The --serve-worker fleet agent: the remote half of the --workers
// transport (the supervisor half lives in syseco.cpp's runFleet).
//
// An agent listens on a TCP port and serves one supervisor connection at a
// time. Over that connection it receives SEF1-framed task requests
// (eco/isolate.hpp fleet codecs), fetches the content-addressed case
// payload once per crc32 key, computes each task with the exact pure
// per-output function a local worker runs (runFleetTask), heartbeats while
// computing so the supervisor's lease stays renewed, and ships back an
// epoch-stamped result or a contained failure. An agent must never die on
// a bad task: compute-side exceptions become failure frames, and transport
// errors just drop the connection (the supervisor classifies the break).
//
// Fault-injection sites "fleet.agent" and "fleet.agent.o<output>" make the
// agent misbehave on the wire deterministically (net-truncate / net-reset /
// net-delay and the isolation kinds), so the supervisor's network failure
// taxonomy is testable end to end on a loopback fleet.

#include <atomic>
#include <cstdint>
#include <functional>

#include "util/status.hpp"

namespace syseco {

struct FleetAgentOptions {
  std::uint16_t port = 0;  ///< 0: kernel-assigned (see boundHook)
  bool serveOnce = false;  ///< exit after the first connection closes
  bool verbose = false;
  /// Polled between accepts and frames; a set flag shuts the agent down
  /// cleanly (the CLI wires SIGINT/SIGTERM here).
  std::atomic<bool>* stop = nullptr;
  /// Called once with the actually-bound listening port (meaningful with
  /// port = 0; the CLI's --port-file uses it).
  std::function<void(std::uint16_t)> boundHook;
};

/// Runs the agent loop until `stop` is set (or, with serveOnce, until the
/// first supervisor connection closes). Returns non-ok only for setup
/// failures (the port cannot be bound); per-connection and per-task
/// failures are contained and served back to the supervisor.
Status runWorkerAgent(const FleetAgentOptions& options);

}  // namespace syseco
