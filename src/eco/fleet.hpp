#pragma once
// The --serve-worker fleet agent: the remote half of the --workers
// transport (the supervisor half lives in syseco.cpp's runFleet).
//
// An agent listens on a TCP port and serves one supervisor connection at a
// time. Over that connection it receives SEF1-framed task requests
// (eco/isolate.hpp fleet codecs), fetches the content-addressed case
// payload once per crc32 key, computes each task with the exact pure
// per-output function a local worker runs (runFleetTask), heartbeats while
// computing so the supervisor's lease stays renewed, and ships back an
// epoch-stamped result or a contained failure. An agent must never die on
// a bad task: compute-side exceptions become failure frames, and transport
// errors just drop the connection (the supervisor classifies the break).
//
// Batch fan-out dispatches *whole cases* over the same connection
// (kTypeFleetCaseTask): the agent runs the full engine on the resident
// case - same seed, same options, agent-local --jobs - and answers with one
// epoch-stamped envelope carrying the run report, the oracle's verdicts
// record and the patched netlist, so a batch drains to artifacts
// bit-identical to running every case locally.
//
// Fault-injection sites "fleet.agent" and "fleet.agent.o<output>" make the
// agent misbehave on the wire deterministically (net-truncate / net-reset /
// net-delay and the isolation kinds), so the supervisor's network failure
// taxonomy is testable end to end on a loopback fleet.

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <vector>

#include "eco/isolate.hpp"
#include "netlist/analysis.hpp"
#include "util/status.hpp"

namespace syseco {

/// The agent's resident-case store: a small crc32-keyed LRU of decoded
/// case payloads with their shared read-only analyses. One slot was enough
/// when every supervisor run used exactly one case; a --serve daemon
/// dispatching jobs across a handful of netlist families would thrash the
/// upload with one slot, so the agent now keeps `slots` families resident
/// and evicts in least-recently-used order. Entries live in a std::list so
/// a found/inserted entry's address stays stable while a task computes
/// against its analyses.
class CaseCacheLru {
 public:
  struct Entry {
    std::uint32_t crc = 0;
    FleetCase c;
    std::unique_ptr<NetlistAnalysis> baseAnalysis;
    std::unique_ptr<NetlistAnalysis> specAnalysis;
  };

  /// Lifetime counters: how well crc32 content-addressing amortizes case
  /// uploads across tasks, retries and whole-case batch dispatch. Surfaced
  /// in the agent's log lines and shipped back in every case-result
  /// envelope so batch reports can aggregate them fleet-wide.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  explicit CaseCacheLru(std::size_t slots) : slots_(slots ? slots : 1) {}

  /// Resident lookup; marks the entry most-recently used. Null on a miss.
  /// Counts one hit or one miss.
  Entry* find(std::uint32_t crc);

  /// Makes `c` resident (building its analyses), evicting the
  /// least-recently-used entry when every slot is taken. Returns the
  /// resident entry, already marked most-recently used. Counts evictions
  /// but neither hits nor misses (the preceding find() already did).
  Entry* insert(std::uint32_t crc, FleetCase c);

  std::size_t size() const { return entries_.size(); }
  std::size_t slots() const { return slots_; }
  const Stats& stats() const { return stats_; }

  /// Resident keys, most-recently used first (the eviction-order test
  /// surface; also what a status probe would report).
  std::vector<std::uint32_t> keysMruFirst() const;

 private:
  /// find() without the hit/miss accounting (insert's same-key refresh).
  Entry* lookup(std::uint32_t crc);

  std::size_t slots_ = 1;
  std::list<Entry> entries_;  ///< front = most recently used
  Stats stats_;
};

struct FleetAgentOptions {
  std::uint16_t port = 0;  ///< 0: kernel-assigned (see boundHook)
  bool serveOnce = false;  ///< exit after the first connection closes
  bool verbose = false;
  /// Resident-case LRU slots (netlist families kept decoded+analyzed).
  std::size_t cacheSlots = 4;
  /// Polled between accepts and frames; a set flag shuts the agent down
  /// cleanly (the CLI wires SIGINT/SIGTERM here).
  std::atomic<bool>* stop = nullptr;
  /// Called once with the actually-bound listening port (meaningful with
  /// port = 0; the CLI's --port-file uses it).
  std::function<void(std::uint16_t)> boundHook;
};

/// Runs the agent loop until `stop` is set (or, with serveOnce, until the
/// first supervisor connection closes). Returns non-ok only for setup
/// failures (the port cannot be bound); per-connection and per-task
/// failures are contained and served back to the supervisor.
Status runWorkerAgent(const FleetAgentOptions& options);

}  // namespace syseco
