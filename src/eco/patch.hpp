#pragma once
// Patch representation and accounting shared by every ECO engine.
//
// All engines modify a working copy of the implementation in place: they
// instantiate new gates (clones of C' logic or fresh logic) and rewire sink
// pins. A PatchTracker wraps the working netlist, records every change, and
// afterwards derives the patch attributes reported in the paper's Table 2:
//
//   gates   - live newly-instantiated gates, constants excluded
//             (constants are tie-offs, not library cells),
//   nets    - live newly-created nets plus the distinct pre-existing nets a
//             pin was rewired to (each is a new connection the ECO adds),
//   inputs  - distinct pre-existing non-constant nets that feed the added
//             logic or directly drive a rewired pin,
//   outputs - rewired sink pins (the rectification points where the patch
//             drives existing logic or a circuit output).
//
// The tracker also supports rollback, which the syseco validation loop uses
// to discard sampling-domain candidates refuted by SAT.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace syseco {

struct PatchStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t gates = 0;
  std::size_t nets = 0;
};

/// Result of one engine run; `rectified` is the patched implementation.
struct EcoResult {
  bool success = false;   ///< every output proven equivalent to the spec
  PatchStats stats;
  double seconds = 0.0;
  std::size_t failingOutputsBefore = 0;
  Netlist rectified;
};

class PatchTracker {
 public:
  struct RewireRecord {
    Sink sink;
    NetId oldNet;
    NetId newNet;
  };

  /// Detachable copy of the tracker's accounting, journaled alongside the
  /// working-netlist snapshot so a resumed run computes the same finalize()
  /// statistics (and the same clone reuse) as an uninterrupted one.
  struct State {
    std::size_t baseGates = 0;
    std::size_t baseNets = 0;
    std::vector<RewireRecord> rewires;
    /// specCloneCache_ as sorted (specNet, workingNet) pairs.
    std::vector<std::pair<NetId, NetId>> cloneCache;
  };

  explicit PatchTracker(Netlist& working);

  /// Re-attaches journaled accounting to a restored working netlist.
  PatchTracker(Netlist& working, const State& state);

  /// Snapshot of the accounting for journaling.
  State state() const;

  Netlist& netlist() { return working_; }
  const Netlist& netlist() const { return working_; }

  /// Rewires a sink pin, recording the change for stats and rollback.
  void rewire(const Sink& sink, NetId newNet);

  /// Marks the current change count; rollback(mark) undoes rewires past it.
  /// (Added gates become dead logic and are removed by the final sweep.)
  std::size_t mark() const { return rewires_.size(); }
  void rollback(std::size_t mark);

  /// Clones a cone of the specification into the working netlist (cached
  /// across calls so shared spec logic is instantiated once).
  NetId cloneSpecCone(const Netlist& spec, NetId specNet);

  /// True when `net` existed before any patching began.
  bool isOriginalNet(NetId net) const { return net < baseNets_; }

  /// Sweeps dead logic and computes the final patch attributes.
  PatchStats finalize();

  const std::vector<RewireRecord>& rewires() const { return rewires_; }

 private:
  Netlist& working_;
  std::size_t baseGates_;
  std::size_t baseNets_;
  std::vector<RewireRecord> rewires_;
  std::unordered_map<NetId, NetId> specCloneCache_;
  std::unordered_map<std::string, NetId> inputByName_;
};

/// Exact equivalence check of every label-matched output pair
/// (unbounded SAT). The final verification step of each engine.
bool verifyAllOutputs(const Netlist& impl, const Netlist& spec);

class ThreadPool;

/// Parallel variant: output pairs are verified across the pool's workers,
/// each with its own encoding and solver. The verdict is the conjunction
/// of per-output results (each unbounded, hence definite), so it is
/// identical to the sequential overload's for any pool size.
bool verifyAllOutputs(const Netlist& impl, const Netlist& spec,
                      ThreadPool& pool);

}  // namespace syseco
