#include "eco/conesynth.hpp"

#include "cnf/encode.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace syseco {

EcoResult runConeSynth(const Netlist& impl, const Netlist& spec,
                       std::uint64_t seed) {
  Timer timer;
  Rng rng(seed);
  EcoResult result;
  result.rectified = impl;
  PatchTracker tracker(result.rectified);

  const std::vector<std::uint32_t> failing =
      findFailingOutputs(impl, spec, rng);
  result.failingOutputsBefore = failing.size();

  for (std::uint32_t o : failing) {
    const std::uint32_t op = spec.findOutput(impl.outputName(o));
    SYSECO_CHECK(op != kNullId);
    const NetId patched = tracker.cloneSpecCone(spec, spec.outputNet(op));
    tracker.rewire(Sink{kNullId, o}, patched);
  }

  result.stats = tracker.finalize();
  result.success = verifyAllOutputs(result.rectified, spec);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace syseco
