#pragma once
// In-house reduced ordered BDD package (paper §5.1, §6: "the in-house BDD
// package").
//
// The manager is deliberately small and self-contained: the symbolic-sampling
// formulation keeps every reasoning query inside a compact variable space
// (sample-index variables z, rectification-point variables y, pin-selection
// variables t, rewiring-choice variables c), so a fresh manager per
// rectification target gives the "contained memory footprint ... independent
// of the design size" property the paper claims. There is no garbage
// collector; managers are cheap to construct and discard.
//
// Features: ITE with computed cache, derived AND/OR/XOR/NOT/IMP, cofactors,
// existential/universal quantification over variable sets, satisfying-set
// counting, single-assignment picking, truth-table import (the bridge from
// N-bit sampled signatures to sampling-domain functions), and
// Minato-Morreale irredundant sum-of-products enumeration (the "prime cube"
// seeds of §4.2).

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/budget.hpp"
#include "util/status.hpp"

namespace syseco {

/// Thrown when a computation exceeds the manager's node budget; callers
/// (the ECO engine) catch this and retry with a smaller candidate space.
struct BddLimitExceeded : std::runtime_error {
  BddLimitExceeded() : std::runtime_error("BDD node limit exceeded") {}
};

/// A product term: one literal entry per manager variable.
/// Values: 0 = negative literal, 1 = positive literal, -1 = absent.
struct BddCube {
  std::vector<std::int8_t> lits;

  std::size_t numLiterals() const {
    std::size_t n = 0;
    for (auto v : lits)
      if (v >= 0) ++n;
    return n;
  }
};

class Bdd {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  /// Creates a manager over `numVars` variables with the identity order
  /// (variable index == level, smaller index closer to the root).
  explicit Bdd(std::uint32_t numVars, std::size_t nodeLimit = 1u << 24);

  std::uint32_t numVars() const { return numVars_; }
  std::size_t nodeCount() const { return nodes_.size(); }

  /// Installs a cooperative resource governor: every fresh node is charged
  /// to its BDD-node ledger, and node construction polls it periodically.
  /// A tripped budget surfaces as BddLimitExceeded (same recovery path as
  /// the manager's own node limit: shrink the problem and retry), a passed
  /// deadline as StatusError{kDeadlineExceeded} (no point retrying).
  /// The guard must outlive the manager. Pass nullptr to detach.
  void setResourceGuard(ResourceGuard* guard) { guard_ = guard; }

  // --- Literals -------------------------------------------------------------
  Ref var(std::uint32_t v);
  Ref nvar(std::uint32_t v);
  Ref constant(bool b) const { return b ? kTrue : kFalse; }

  // --- Core operations --------------------------------------------------------
  Ref ite(Ref f, Ref g, Ref h);
  Ref bAnd(Ref a, Ref b) { return ite(a, b, kFalse); }
  Ref bOr(Ref a, Ref b) { return ite(a, kTrue, b); }
  Ref bNot(Ref a) { return ite(a, kFalse, kTrue); }
  Ref bXor(Ref a, Ref b) { return ite(a, bNot(b), b); }
  Ref bXnor(Ref a, Ref b) { return ite(a, b, bNot(b)); }
  Ref bImp(Ref a, Ref b) { return ite(a, b, kTrue); }
  Ref bEquiv(Ref a, Ref b) { return bXnor(a, b); }

  Ref andMany(const std::vector<Ref>& fs);
  Ref orMany(const std::vector<Ref>& fs);

  // --- Cofactors & quantification ---------------------------------------------
  /// Shannon cofactor with respect to a single variable.
  Ref cofactor(Ref f, std::uint32_t v, bool positive);

  /// Existentially quantifies the given variables out of f.
  Ref exists(Ref f, const std::vector<std::uint32_t>& vars);
  /// Universally quantifies the given variables out of f.
  Ref forall(Ref f, const std::vector<std::uint32_t>& vars);

  /// Functional composition: f with variable v replaced by g.
  Ref compose(Ref f, std::uint32_t v, Ref g);

  /// Variables f structurally depends on, ascending.
  std::vector<std::uint32_t> support(Ref f);

  // --- Analysis -----------------------------------------------------------------
  /// Number of satisfying assignments over all numVars() variables.
  double satCount(Ref f);

  /// Extracts one satisfying cube (a path to kTrue); entries of `out` get
  /// 0/1 for constrained variables and -1 for don't-cares. Returns false on
  /// the constant-false function.
  bool pickCube(Ref f, BddCube& out);

  /// Irredundant sum-of-products of f (Minato-Morreale). For a function f,
  /// isop(f, f) yields an irredundant cover whose cubes serve as the
  /// candidate-seeding "prime cubes" of §4.2.
  std::vector<BddCube> isop(Ref lower, Ref upper);
  std::vector<BddCube> isop(Ref f) { return isop(f, f); }

  /// Evaluates f under a full assignment (one bool per variable).
  bool eval(Ref f, const std::vector<std::uint8_t>& assignment) const;

  // --- Import ---------------------------------------------------------------
  /// Builds the function of a truth table over `vars`: bit k of `bits`
  /// (k < 2^vars.size()) is the function value when the binary expansion of
  /// k assigns its j-th least significant bit to vars[j].
  /// This converts an N-bit sampled signature into its sampling-domain
  /// function over the z variables (paper §5.1).
  Ref fromTruthTable(const std::vector<std::uint64_t>& bits,
                     const std::vector<std::uint32_t>& vars);

  /// Builds the minterm selecting integer `index` over `vars` (big-endian
  /// bit order as in the paper's v^i notation: vars[0] is the most
  /// significant bit).
  Ref mintermOf(std::uint32_t index, const std::vector<std::uint32_t>& vars);

 private:
  struct Node {
    std::uint32_t var;
    Ref lo;
    Ref hi;
  };
  struct NodeKey {
    std::uint32_t var;
    Ref lo;
    Ref hi;
    bool operator==(const NodeKey& o) const {
      return var == o.var && lo == o.lo && hi == o.hi;
    }
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::uint64_t h = k.var;
      h = h * 0x9e3779b97f4a7c15ULL + k.lo;
      h = h * 0x9e3779b97f4a7c15ULL + k.hi;
      h ^= h >> 29;
      return static_cast<std::size_t>(h);
    }
  };
  struct IteKey {
    Ref f, g, h;
    bool operator==(const IteKey& o) const {
      return f == o.f && g == o.g && h == o.h;
    }
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::uint64_t h = k.f;
      h = h * 0x9e3779b97f4a7c15ULL + k.g;
      h = h * 0x9e3779b97f4a7c15ULL + k.h;
      h ^= h >> 31;
      return static_cast<std::size_t>(h);
    }
  };

  Ref makeNode(std::uint32_t var, Ref lo, Ref hi);
  std::uint32_t topVar(Ref f) const {
    return f <= 1 ? numVars_ : nodes_[f].var;
  }
  Ref low(Ref f, std::uint32_t v) const {
    return (f <= 1 || nodes_[f].var != v) ? f : nodes_[f].lo;
  }
  Ref high(Ref f, std::uint32_t v) const {
    return (f <= 1 || nodes_[f].var != v) ? f : nodes_[f].hi;
  }
  Ref quantify(Ref f, const std::vector<char>& mask, bool existential,
               std::unordered_map<Ref, Ref>& cache);
  Ref composeRec(Ref f, std::uint32_t v, Ref g,
                 std::unordered_map<Ref, Ref>& cache);
  double satCountRec(Ref f, std::unordered_map<Ref, double>& cache);
  Ref fromTruthTableRec(const std::vector<std::uint64_t>& bits,
                        const std::vector<std::uint32_t>& vars,
                        std::size_t varPos, std::size_t offset,
                        std::size_t width);
  std::vector<BddCube> isopRun(Ref lower, Ref upper, Ref& coverOut);

  std::uint32_t numVars_;
  std::size_t nodeLimit_;
  ResourceGuard* guard_ = nullptr;
  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, Ref, NodeKeyHash> unique_;
  std::unordered_map<IteKey, Ref, IteKeyHash> iteCache_;
};

}  // namespace syseco
