#pragma once
// In-house reduced ordered BDD package (paper §5.1, §6: "the in-house BDD
// package").
//
// The manager is deliberately small and self-contained: the symbolic-sampling
// formulation keeps every reasoning query inside a compact variable space
// (sample-index variables z, rectification-point variables y, pin-selection
// variables t, rewiring-choice variables c), so a fresh manager per
// rectification target gives the "contained memory footprint ... independent
// of the design size" property the paper claims. There is no garbage
// collector; managers are cheap to construct and discard.
//
// Features: ITE with a direct-mapped computed cache (adaptively grown, with
// hit/miss/eviction statistics), derived AND/OR/XOR/NOT/IMP, cofactors,
// existential/universal quantification over variable sets, satisfying-set
// counting, single-assignment picking, truth-table import (the bridge from
// N-bit sampled signatures to sampling-domain functions), Minato-Morreale
// irredundant sum-of-products enumeration (the "prime cube" seeds of §4.2),
// and dynamic variable reordering by sifting (Rudell) built on an in-place
// adjacent-level swap that never invalidates an outstanding Ref.
//
// Reordering in an append-only arena. Nodes are never freed, so a swap of
// adjacent levels x (upper) and y (lower) rewrites each x-node whose
// children involve y *in place*: the node keeps its Ref and its function,
// only its (var, lo, hi) triple changes. Canonicity survives without
// forwarding pointers because a rewritten node still depends on x, and no
// pre-existing y-node can depend on x (x was above it), so the rewritten
// triple cannot collide with a table-resident node. The one thing sifting
// needs that an arena cannot provide is a notion of *live* size - without
// it the table only ever grows and every sift position looks worse than the
// starting one. Callers therefore register a root provider (the refs they
// still hold); reordering ref-counts the live subgraph from those roots and
// uses live size as the sift objective. Without a provider, auto-reorder
// stays disarmed and reorderNow() is the explicit entry point.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/budget.hpp"
#include "util/status.hpp"

namespace syseco {

/// Thrown when a computation exceeds the manager's node budget; callers
/// (the ECO engine) catch this and retry with a smaller candidate space.
struct BddLimitExceeded : std::runtime_error {
  BddLimitExceeded() : std::runtime_error("BDD node limit exceeded") {}
};

/// A product term: one literal entry per manager variable.
/// Values: 0 = negative literal, 1 = positive literal, -1 = absent.
/// Entries are indexed by *variable*, not by level, so cubes read the same
/// under any variable order.
struct BddCube {
  std::vector<std::int8_t> lits;

  std::size_t numLiterals() const {
    std::size_t n = 0;
    for (auto v : lits)
      if (v >= 0) ++n;
    return n;
  }
};

/// Dynamic variable reordering policy.
///  * kOff: identity behavior of the pre-reordering package - node creation
///    order, budget trip points and governor charges are bit-identical.
///  * kSift: one sifting pass per auto-reorder trigger.
///  * kSiftConverge: sifting passes repeat until the live size stops
///    improving (or a pass cap is hit).
enum class BddReorder : std::uint8_t { kOff = 0, kSift = 1, kSiftConverge = 2 };

/// Tunables for the unique table, computed cache and reordering machinery.
/// The defaults reproduce the historical package exactly when
/// `reorder == kOff` (cache policy cannot change which nodes exist - the
/// unique table deduplicates - so cache sizing is verdict-neutral).
struct BddConfig {
  std::size_t nodeLimit = 1u << 24;
  BddReorder reorder = BddReorder::kOff;
  /// Node count that arms the first auto-reorder; subsequent triggers are
  /// the post-reorder size times `reorderGrowth`. 0 disables auto-reorder.
  std::size_t reorderThreshold = 4096;
  double reorderGrowth = 2.0;
  /// A sift of one variable aborts a direction once live size exceeds
  /// this factor of the size at sift start.
  double maxSiftGrowth = 1.2;
  /// Computed cache starts at 2^cacheBits entries and doubles (up to
  /// 2^maxCacheBits) when misses outrun capacity.
  std::uint32_t cacheBits = 14;
  std::uint32_t maxCacheBits = 21;
  /// Initial per-variable unique-subtable bucket count is 2^uniqueBits.
  std::uint32_t uniqueBits = 3;
};

/// Engine observability: enough to diagnose a slow symbolic phase without a
/// profiler (surfaced per-output in --report).
struct BddStats {
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t cacheEvictions = 0;
  std::uint64_t cacheGrows = 0;
  std::uint64_t uniqueHits = 0;  ///< makeNode calls answered by dedup
  std::uint64_t reorders = 0;
  std::uint64_t swaps = 0;       ///< adjacent-level swaps executed
  std::size_t peakNodes = 0;
  std::uint32_t cacheBitsNow = 0;

  double cacheHitRate() const {
    const double total = static_cast<double>(cacheHits + cacheMisses);
    return total > 0 ? static_cast<double>(cacheHits) / total : 0.0;
  }
};

class Bdd {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  /// Creates a manager over `numVars` variables with the identity order
  /// (variable index == level, smaller index closer to the root).
  explicit Bdd(std::uint32_t numVars, std::size_t nodeLimit = 1u << 24);

  /// Creates a manager with explicit engine tunables.
  Bdd(std::uint32_t numVars, const BddConfig& config);

  std::uint32_t numVars() const { return numVars_; }
  std::size_t nodeCount() const { return nodes_.size(); }
  const BddConfig& config() const { return cfg_; }
  const BddStats& stats() const { return stats_; }

  /// Installs a cooperative resource governor: every fresh node is charged
  /// to its BDD-node ledger, and node construction polls it periodically.
  /// A tripped budget surfaces as BddLimitExceeded (same recovery path as
  /// the manager's own node limit: shrink the problem and retry), a passed
  /// deadline as StatusError{kDeadlineExceeded} (no point retrying).
  /// Transient nodes allocated by reordering charge the same ledger - the
  /// governor contract does not distinguish who asked for memory.
  /// The guard must outlive the manager. Pass nullptr to detach.
  void setResourceGuard(ResourceGuard* guard) { guard_ = guard; }

  /// Registers the live-root provider used by (auto-)reordering: it must
  /// append every Ref the caller still holds. Auto-reorder stays disarmed
  /// until a provider is registered. Pass nullptr to detach (disarms).
  void setRootProvider(std::function<void(std::vector<Ref>&)> provider);

  /// RAII pin for a single Ref across public operations. While reordering
  /// is armed, a Ref the root provider cannot see (a fold accumulator, a
  /// temporary carried between two calls) may be detached at the next
  /// operation boundary; a ScopedRef keeps it live. With reordering off
  /// the pin is free bookkeeping. Movable, not copyable.
  class ScopedRef {
   public:
    ScopedRef(Bdd& m, Ref r = kFalse) : m_(&m), slot_(m.pinRef(r)) {}
    ~ScopedRef() {
      if (m_) m_->unpinRef(slot_);
    }
    ScopedRef(ScopedRef&& o) noexcept : m_(o.m_), slot_(o.slot_) {
      o.m_ = nullptr;
    }
    ScopedRef(const ScopedRef&) = delete;
    ScopedRef& operator=(const ScopedRef&) = delete;
    ScopedRef& operator=(Ref r) {
      m_->pinned_[slot_] = r;
      return *this;
    }
    operator Ref() const { return m_->pinned_[slot_]; }

   private:
    Bdd* m_;
    std::size_t slot_;
  };

  /// Runs one reordering pass now (honoring the configured policy; a kOff
  /// manager sifts once). `roots` are the refs that must stay live.
  /// Returns live node count after the pass.
  std::size_t reorderNow(const std::vector<Ref>& roots);

  /// Current level of variable v (0 = root-most).
  std::uint32_t levelOf(std::uint32_t v) const { return level_[v]; }
  /// Variable at level l.
  std::uint32_t varAt(std::uint32_t l) const { return varAtLevel_[l]; }

  // --- Literals -------------------------------------------------------------
  Ref var(std::uint32_t v);
  Ref nvar(std::uint32_t v);
  Ref constant(bool b) const { return b ? kTrue : kFalse; }

  // --- Core operations --------------------------------------------------------
  Ref ite(Ref f, Ref g, Ref h);
  Ref bAnd(Ref a, Ref b) { return ite(a, b, kFalse); }
  Ref bOr(Ref a, Ref b) { return ite(a, kTrue, b); }
  Ref bNot(Ref a) { return ite(a, kFalse, kTrue); }
  // Out-of-line: these chain two ite calls, and the intermediate !b must
  // not cross a public operation boundary unprotected (an auto-reorder
  // firing at the second ite's entry would detach it).
  Ref bXor(Ref a, Ref b);
  Ref bXnor(Ref a, Ref b);
  Ref bImp(Ref a, Ref b) { return ite(a, b, kTrue); }
  Ref bEquiv(Ref a, Ref b) { return bXnor(a, b); }

  Ref andMany(const std::vector<Ref>& fs);
  Ref orMany(const std::vector<Ref>& fs);

  // --- Cofactors & quantification ---------------------------------------------
  /// Shannon cofactor with respect to a single variable.
  Ref cofactor(Ref f, std::uint32_t v, bool positive);

  /// Existentially quantifies the given variables out of f.
  Ref exists(Ref f, const std::vector<std::uint32_t>& vars);
  /// Universally quantifies the given variables out of f.
  Ref forall(Ref f, const std::vector<std::uint32_t>& vars);

  /// Functional composition: f with variable v replaced by g.
  Ref compose(Ref f, std::uint32_t v, Ref g);

  /// Variables f structurally depends on, ascending by variable index.
  std::vector<std::uint32_t> support(Ref f);

  // --- Analysis -----------------------------------------------------------------
  /// Number of satisfying assignments over all numVars() variables.
  double satCount(Ref f);

  /// Extracts one satisfying cube (a path to kTrue); entries of `out` get
  /// 0/1 for constrained variables and -1 for don't-cares. Returns false on
  /// the constant-false function.
  bool pickCube(Ref f, BddCube& out);

  /// Irredundant sum-of-products of f (Minato-Morreale). For a function f,
  /// isop(f, f) yields an irredundant cover whose cubes serve as the
  /// candidate-seeding "prime cubes" of §4.2.
  std::vector<BddCube> isop(Ref lower, Ref upper);
  std::vector<BddCube> isop(Ref f) { return isop(f, f); }

  /// Evaluates f under a full assignment (one bool per variable).
  bool eval(Ref f, const std::vector<std::uint8_t>& assignment) const;

  // --- Import ---------------------------------------------------------------
  /// Builds the function of a truth table over `vars`: bit k of `bits`
  /// (k < 2^vars.size()) is the function value when the binary expansion of
  /// k assigns its j-th least significant bit to vars[j].
  /// This converts an N-bit sampled signature into its sampling-domain
  /// function over the z variables (paper §5.1).
  Ref fromTruthTable(const std::vector<std::uint64_t>& bits,
                     const std::vector<std::uint32_t>& vars);

  /// Builds the minterm selecting integer `index` over `vars` (big-endian
  /// bit order as in the paper's v^i notation: vars[0] is the most
  /// significant bit).
  Ref mintermOf(std::uint32_t index, const std::vector<std::uint32_t>& vars);

 private:
  /// var value marking a node unlinked from the unique table by reordering
  /// (a dead node whose triple would violate the new order). Unreachable
  /// from any live Ref when the root provider reported all holders.
  static constexpr std::uint32_t kDetachedVar = 0xFFFFFFFFu;

  struct Node {
    std::uint32_t var;
    Ref lo;
    Ref hi;
    Ref next;  ///< unique-subtable chain
  };

  static constexpr Ref kNil = 0xFFFFFFFFu;

  /// Per-variable unique subtable: chained open hash over (lo, hi), so a
  /// level's nodes are enumerable (the swap primitive needs that).
  struct SubTable {
    std::vector<Ref> buckets;
    std::size_t count = 0;
  };

  struct CacheEntry {
    Ref f = kNil;  ///< kNil marks an empty slot (f is never terminal here)
    Ref g = 0;
    Ref h = 0;
    Ref r = 0;
  };

  /// RAII scope for public operations: auto-reorder runs only when the
  /// outermost operation begins, never mid-recursion (outstanding local
  /// Refs survive a reorder, but the trigger bookkeeping must not nest).
  struct OpScope {
    explicit OpScope(Bdd& m) : m_(m) {
      if (m_.opDepth_++ == 0) m_.maybeAutoReorder();
    }
    ~OpScope() { --m_.opDepth_; }
    Bdd& m_;
  };
  friend struct OpScope;

  static std::uint64_t pairHash(Ref lo, Ref hi) {
    std::uint64_t h = lo;
    h = h * 0x9e3779b97f4a7c15ULL + hi;
    h ^= h >> 29;
    return h;
  }
  static std::uint64_t iteHash(Ref f, Ref g, Ref h) {
    std::uint64_t x = f;
    x = x * 0x9e3779b97f4a7c15ULL + g;
    x = x * 0x9e3779b97f4a7c15ULL + h;
    x ^= x >> 31;
    return x;
  }

  Ref makeNode(std::uint32_t var, Ref lo, Ref hi);
  void growSubTable(std::uint32_t var);
  void unlinkFromTable(std::uint32_t var, Ref node);
  void linkIntoTable(std::uint32_t var, Ref node);

  std::uint32_t topVar(Ref f) const {
    return f <= 1 ? numVars_ : nodes_[f].var;
  }
  /// Level of f's top node; terminals sit one past the last real level.
  std::uint32_t topLevel(Ref f) const {
    return f <= 1 ? numVars_ : level_[nodes_[f].var];
  }
  Ref low(Ref f, std::uint32_t v) const {
    return (f <= 1 || nodes_[f].var != v) ? f : nodes_[f].lo;
  }
  Ref high(Ref f, std::uint32_t v) const {
    return (f <= 1 || nodes_[f].var != v) ? f : nodes_[f].hi;
  }

  Ref iteRec(Ref f, Ref g, Ref h);
  void growCache();
  void flushCache();

  std::size_t pinRef(Ref r);
  void unpinRef(std::size_t slot);

  Ref quantify(Ref f, const std::vector<char>& mask, bool existential,
               std::unordered_map<Ref, Ref>& cache);
  Ref composeRec(Ref f, std::uint32_t v, Ref g,
                 std::unordered_map<Ref, Ref>& cache);
  double satCountRec(Ref f, std::unordered_map<Ref, double>& cache);
  Ref fromTruthTableRec(const std::vector<std::uint64_t>& bits,
                        const std::vector<std::uint32_t>& vars,
                        std::size_t varPos, std::size_t offset,
                        std::size_t width);
  std::vector<BddCube> isopRun(Ref lower, Ref upper, Ref& coverOut);

  // --- Reordering ----------------------------------------------------------
  void maybeAutoReorder();
  void armTrigger();
  std::size_t runReorder(const std::vector<Ref>& roots);
  void siftPass(std::vector<std::uint32_t>& varsBySize);
  void siftVar(std::uint32_t v);
  void swapLevels(std::uint32_t l);
  void incRef(Ref r);
  void decRef(Ref r);

  std::uint32_t numVars_;
  BddConfig cfg_;
  ResourceGuard* guard_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<SubTable> tables_;            ///< indexed by variable
  std::vector<std::uint32_t> level_;        ///< var -> level (+ sentinel slot)
  std::vector<std::uint32_t> varAtLevel_;   ///< level -> var
  std::vector<CacheEntry> cache_;
  std::uint32_t cacheMask_ = 0;
  std::uint64_t cacheMissesAtGrow_ = 0;
  BddStats stats_;
  std::function<void(std::vector<Ref>&)> rootProvider_;
  std::vector<Ref> pinned_;            ///< ScopedRef slots (kNil = free)
  std::vector<std::size_t> pinnedFree_;
  std::size_t nextReorderAt_ = 0;  ///< 0 = auto-reorder disarmed
  bool needReorder_ = false;
  bool inReorder_ = false;
  int opDepth_ = 0;
  /// Live-subgraph reference counts, valid only while inReorder_.
  std::vector<std::uint32_t> liveRefs_;
  std::vector<std::size_t> liveAtVar_;  ///< live nodes per var (reorder only)
  std::size_t liveSize_ = 0;
};

}  // namespace syseco
