#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace syseco {

Bdd::Bdd(std::uint32_t numVars, std::size_t nodeLimit)
    : numVars_(numVars), nodeLimit_(nodeLimit) {
  // Slots 0 and 1 are the terminal nodes; their var field is a sentinel one
  // past the last real level so that topVar() comparisons are uniform.
  nodes_.push_back(Node{numVars_, 0, 0});
  nodes_.push_back(Node{numVars_, 1, 1});
}

Bdd::Ref Bdd::makeNode(std::uint32_t var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  const NodeKey key{var, lo, hi};
  if (auto it = unique_.find(key); it != unique_.end()) return it->second;
  if (nodes_.size() >= nodeLimit_) throw BddLimitExceeded{};
  if (guard_ != nullptr) {
    guard_->chargeBddNodes(1);
    if ((nodes_.size() & 0x3FF) == 0) {
      const Status s = guard_->checkpoint("bdd");
      if (!s.isOk()) {
        // Budget family degrades like the node limit (shrink + retry);
        // a missed deadline must unwind all the way to the fallback.
        if (s.code() == StatusCode::kDeadlineExceeded) throw StatusError(s);
        throw BddLimitExceeded{};
      }
    }
  }
  const Ref r = static_cast<Ref>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  unique_.emplace(key, r);
  return r;
}

Bdd::Ref Bdd::var(std::uint32_t v) {
  SYSECO_CHECK(v < numVars_);
  return makeNode(v, kFalse, kTrue);
}

Bdd::Ref Bdd::nvar(std::uint32_t v) {
  SYSECO_CHECK(v < numVars_);
  return makeNode(v, kTrue, kFalse);
}

Bdd::Ref Bdd::ite(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const IteKey key{f, g, h};
  if (auto it = iteCache_.find(key); it != iteCache_.end()) return it->second;

  const std::uint32_t v = std::min({topVar(f), topVar(g), topVar(h)});
  const Ref lo = ite(low(f, v), low(g, v), low(h, v));
  const Ref hi = ite(high(f, v), high(g, v), high(h, v));
  const Ref r = makeNode(v, lo, hi);
  iteCache_.emplace(key, r);
  return r;
}

Bdd::Ref Bdd::andMany(const std::vector<Ref>& fs) {
  Ref acc = kTrue;
  for (Ref f : fs) acc = bAnd(acc, f);
  return acc;
}

Bdd::Ref Bdd::orMany(const std::vector<Ref>& fs) {
  Ref acc = kFalse;
  for (Ref f : fs) acc = bOr(acc, f);
  return acc;
}

Bdd::Ref Bdd::cofactor(Ref f, std::uint32_t v, bool positive) {
  if (f <= 1) return f;
  const std::uint32_t t = topVar(f);
  if (t > v) return f;
  if (t == v) return positive ? nodes_[f].hi : nodes_[f].lo;
  // Recurse; small helper via ite-style decomposition without caching is
  // acceptable here because cofactor is only applied near the root in this
  // codebase, but we cache through the quantifier machinery instead.
  const Ref lo = cofactor(nodes_[f].lo, v, positive);
  const Ref hi = cofactor(nodes_[f].hi, v, positive);
  return makeNode(t, lo, hi);
}

Bdd::Ref Bdd::quantify(Ref f, const std::vector<char>& mask, bool existential,
                       std::unordered_map<Ref, Ref>& cache) {
  if (f <= 1) return f;
  if (auto it = cache.find(f); it != cache.end()) return it->second;
  const std::uint32_t v = nodes_[f].var;
  const Ref lo = quantify(nodes_[f].lo, mask, existential, cache);
  const Ref hi = quantify(nodes_[f].hi, mask, existential, cache);
  Ref r;
  if (mask[v]) {
    r = existential ? bOr(lo, hi) : bAnd(lo, hi);
  } else {
    r = makeNode(v, lo, hi);
  }
  cache.emplace(f, r);
  return r;
}

Bdd::Ref Bdd::exists(Ref f, const std::vector<std::uint32_t>& vars) {
  std::vector<char> mask(numVars_, 0);
  for (auto v : vars) {
    SYSECO_CHECK(v < numVars_);
    mask[v] = 1;
  }
  std::unordered_map<Ref, Ref> cache;
  return quantify(f, mask, /*existential=*/true, cache);
}

Bdd::Ref Bdd::forall(Ref f, const std::vector<std::uint32_t>& vars) {
  std::vector<char> mask(numVars_, 0);
  for (auto v : vars) {
    SYSECO_CHECK(v < numVars_);
    mask[v] = 1;
  }
  std::unordered_map<Ref, Ref> cache;
  return quantify(f, mask, /*existential=*/false, cache);
}

Bdd::Ref Bdd::composeRec(Ref f, std::uint32_t v, Ref g,
                         std::unordered_map<Ref, Ref>& cache) {
  if (f <= 1) return f;
  const std::uint32_t t = nodes_[f].var;
  if (t > v) return f;  // v cannot appear below its own level
  if (auto it = cache.find(f); it != cache.end()) return it->second;
  Ref r;
  if (t == v) {
    r = ite(g, nodes_[f].hi, nodes_[f].lo);
  } else {
    const Ref lo = composeRec(nodes_[f].lo, v, g, cache);
    const Ref hi = composeRec(nodes_[f].hi, v, g, cache);
    // g may depend on variables above t, so rebuild through ite.
    r = ite(var(t), hi, lo);
  }
  cache.emplace(f, r);
  return r;
}

Bdd::Ref Bdd::compose(Ref f, std::uint32_t v, Ref g) {
  SYSECO_CHECK(v < numVars_);
  std::unordered_map<Ref, Ref> cache;
  return composeRec(f, v, g, cache);
}

std::vector<std::uint32_t> Bdd::support(Ref f) {
  std::vector<char> seenVar(numVars_, 0);
  std::unordered_map<Ref, char> visited;
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    const Ref r = stack.back();
    stack.pop_back();
    if (r <= 1 || visited.count(r)) continue;
    visited.emplace(r, 1);
    seenVar[nodes_[r].var] = 1;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < numVars_; ++v)
    if (seenVar[v]) out.push_back(v);
  return out;
}

double Bdd::satCountRec(Ref f, std::unordered_map<Ref, double>& cache) {
  // Counts assignments to the variables in [topVar(f), numVars).
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  if (auto it = cache.find(f); it != cache.end()) return it->second;
  const Node& n = nodes_[f];
  const double cl = satCountRec(n.lo, cache) *
                    std::exp2(static_cast<double>(topVar(n.lo) - n.var - 1));
  const double ch = satCountRec(n.hi, cache) *
                    std::exp2(static_cast<double>(topVar(n.hi) - n.var - 1));
  const double c = cl + ch;
  cache.emplace(f, c);
  return c;
}

double Bdd::satCount(Ref f) {
  std::unordered_map<Ref, double> cache;
  return satCountRec(f, cache) * std::exp2(static_cast<double>(topVar(f)));
}

bool Bdd::pickCube(Ref f, BddCube& out) {
  if (f == kFalse) return false;
  out.lits.assign(numVars_, -1);
  while (f != kTrue) {
    const Node& n = nodes_[f];
    if (n.lo != kFalse) {
      out.lits[n.var] = 0;
      f = n.lo;
    } else {
      out.lits[n.var] = 1;
      f = n.hi;
    }
  }
  return true;
}

std::vector<BddCube> Bdd::isopRun(Ref l, Ref u, Ref& coverOut) {
  // Minato-Morreale ISOP step: produces an irredundant cover F with
  // l <= F <= u. The cube lists of the three sub-covers are combined,
  // not nested, hence the explicit coverOut accumulator.
  if (l == kFalse) {
    coverOut = kFalse;
    return {};
  }
  if (u == kTrue) {
    coverOut = kTrue;
    BddCube all;
    all.lits.assign(numVars_, -1);
    return {all};
  }
  const std::uint32_t v = std::min(topVar(l), topVar(u));
  const Ref l0 = low(l, v), l1 = high(l, v);
  const Ref u0 = low(u, v), u1 = high(u, v);

  // Cubes that must contain literal !v / v.
  Ref f0 = kFalse, f1 = kFalse;
  auto c0 = isopRun(bAnd(l0, bNot(u1)), u0, f0);
  auto c1 = isopRun(bAnd(l1, bNot(u0)), u1, f1);
  for (auto& c : c0) c.lits[v] = 0;
  for (auto& c : c1) c.lits[v] = 1;

  // Remaining onset handled by cubes independent of v.
  const Ref ld = bOr(bAnd(l0, bNot(f0)), bAnd(l1, bNot(f1)));
  const Ref ud = bAnd(u0, u1);
  Ref fd = kFalse;
  auto cd = isopRun(ld, ud, fd);

  coverOut = makeNode(v, bOr(f0, fd), bOr(f1, fd));
  std::vector<BddCube> all;
  all.reserve(c0.size() + c1.size() + cd.size());
  for (auto& c : c0) all.push_back(std::move(c));
  for (auto& c : c1) all.push_back(std::move(c));
  for (auto& c : cd) all.push_back(std::move(c));
  return all;
}

std::vector<BddCube> Bdd::isop(Ref lower, Ref upper) {
  SYSECO_CHECK(ite(lower, upper, kTrue) == kTrue);  // lower implies upper
  Ref cover = kFalse;
  auto cubes = isopRun(lower, upper, cover);
  // Sanity: the produced cover must lie between the bounds.
  SYSECO_CHECK(ite(lower, cover, kTrue) == kTrue);
  SYSECO_CHECK(ite(cover, upper, kTrue) == kTrue);
  return cubes;
}

bool Bdd::eval(Ref f, const std::vector<std::uint8_t>& assignment) const {
  SYSECO_CHECK(assignment.size() >= numVars_);
  while (f > 1) {
    const Node& n = nodes_[f];
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

Bdd::Ref Bdd::fromTruthTableRec(const std::vector<std::uint64_t>& bits,
                                const std::vector<std::uint32_t>& vars,
                                std::size_t varPos, std::size_t offset,
                                std::size_t width) {
  auto bitAt = [&](std::size_t k) {
    return (bits[k / 64] >> (k % 64)) & 1;
  };
  if (width == 1) return bitAt(offset) ? kTrue : kFalse;
  // vars[varPos-1] is the highest remaining selector; splitting on it keeps
  // the little-endian convention: bit j of the index drives vars[j].
  const std::size_t half = width / 2;
  const Ref lo = fromTruthTableRec(bits, vars, varPos - 1, offset, half);
  const Ref hi = fromTruthTableRec(bits, vars, varPos - 1, offset + half, half);
  if (lo == hi) return lo;
  // The nodes must respect the manager order, so combine through ite on the
  // selector variable (vars need not be sorted).
  return ite(var(vars[varPos - 1]), hi, lo);
}

Bdd::Ref Bdd::fromTruthTable(const std::vector<std::uint64_t>& bits,
                             const std::vector<std::uint32_t>& vars) {
  const std::size_t width = std::size_t{1} << vars.size();
  SYSECO_CHECK(bits.size() * 64 >= width);
  if (vars.empty()) return (bits[0] & 1) ? kTrue : kFalse;
  return fromTruthTableRec(bits, vars, vars.size(), 0, width);
}

Bdd::Ref Bdd::mintermOf(std::uint32_t index,
                        const std::vector<std::uint32_t>& vars) {
  // Big-endian: vars[0] is the most significant bit of index (paper's v^i).
  Ref acc = kTrue;
  const std::size_t n = vars.size();
  for (std::size_t j = 0; j < n; ++j) {
    const bool bit = (index >> (n - 1 - j)) & 1;
    acc = bAnd(acc, bit ? var(vars[j]) : nvar(vars[j]));
  }
  return acc;
}

}  // namespace syseco
