#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace syseco {

Bdd::Bdd(std::uint32_t numVars, std::size_t nodeLimit)
    : Bdd(numVars, [nodeLimit] {
        BddConfig c;
        c.nodeLimit = nodeLimit;
        return c;
      }()) {}

Bdd::Bdd(std::uint32_t numVars, const BddConfig& config)
    : numVars_(numVars), cfg_(config) {
  // Slots 0 and 1 are the terminal nodes; their var field is a sentinel one
  // past the last real level so that topVar()/topLevel() are uniform.
  nodes_.push_back(Node{numVars_, 0, 0, kNil});
  nodes_.push_back(Node{numVars_, 1, 1, kNil});
  tables_.resize(numVars_);
  for (auto& t : tables_)
    t.buckets.assign(std::size_t{1} << cfg_.uniqueBits, kNil);
  level_.resize(numVars_ + 1);
  varAtLevel_.resize(numVars_);
  for (std::uint32_t v = 0; v < numVars_; ++v) {
    level_[v] = v;
    varAtLevel_[v] = v;
  }
  level_[numVars_] = numVars_;
  stats_.cacheBitsNow = cfg_.cacheBits;
  cache_.assign(std::size_t{1} << cfg_.cacheBits, CacheEntry{});
  cacheMask_ = static_cast<std::uint32_t>(cache_.size() - 1);
}

void Bdd::setRootProvider(std::function<void(std::vector<Ref>&)> provider) {
  rootProvider_ = std::move(provider);
  armTrigger();
}

void Bdd::armTrigger() {
  if (cfg_.reorder != BddReorder::kOff && rootProvider_ &&
      cfg_.reorderThreshold != 0) {
    nextReorderAt_ = std::max(cfg_.reorderThreshold, nodes_.size() + 1);
  } else {
    nextReorderAt_ = 0;
    needReorder_ = false;
  }
}

// --- Unique table -----------------------------------------------------------

Bdd::Ref Bdd::makeNode(std::uint32_t var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  SubTable& t = tables_[var];
  const std::size_t idx = pairHash(lo, hi) & (t.buckets.size() - 1);
  for (Ref p = t.buckets[idx]; p != kNil; p = nodes_[p].next) {
    if (nodes_[p].lo == lo && nodes_[p].hi == hi) {
      ++stats_.uniqueHits;
      return p;
    }
  }
  if (nodes_.size() >= cfg_.nodeLimit) throw BddLimitExceeded{};
  if (guard_ != nullptr) {
    guard_->chargeBddNodes(1);
    if ((nodes_.size() & 0x3FF) == 0) {
      const Status s = guard_->checkpoint("bdd");
      if (!s.isOk()) {
        // Budget family degrades like the node limit (shrink + retry);
        // a missed deadline must unwind all the way to the fallback.
        if (s.code() == StatusCode::kDeadlineExceeded) throw StatusError(s);
        throw BddLimitExceeded{};
      }
    }
  }
  const Ref r = static_cast<Ref>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi, t.buckets[idx]});
  t.buckets[idx] = r;
  ++t.count;
  if (nodes_.size() > stats_.peakNodes) stats_.peakNodes = nodes_.size();
  if (t.count > 2 * t.buckets.size()) growSubTable(var);
  if (nextReorderAt_ != 0 && nodes_.size() >= nextReorderAt_ && !inReorder_)
    needReorder_ = true;
  return r;
}

void Bdd::growSubTable(std::uint32_t var) {
  SubTable& t = tables_[var];
  std::vector<Ref> old = std::move(t.buckets);
  t.buckets.assign(old.size() * 2, kNil);
  const std::size_t mask = t.buckets.size() - 1;
  for (Ref b : old) {
    for (Ref p = b; p != kNil;) {
      const Ref next = nodes_[p].next;
      const std::size_t idx = pairHash(nodes_[p].lo, nodes_[p].hi) & mask;
      nodes_[p].next = t.buckets[idx];
      t.buckets[idx] = p;
      p = next;
    }
  }
}

void Bdd::unlinkFromTable(std::uint32_t var, Ref node) {
  SubTable& t = tables_[var];
  const std::size_t idx =
      pairHash(nodes_[node].lo, nodes_[node].hi) & (t.buckets.size() - 1);
  Ref* slot = &t.buckets[idx];
  while (*slot != node) slot = &nodes_[*slot].next;
  *slot = nodes_[node].next;
  nodes_[node].next = kNil;
  --t.count;
}

void Bdd::linkIntoTable(std::uint32_t var, Ref node) {
  SubTable& t = tables_[var];
  const std::size_t idx =
      pairHash(nodes_[node].lo, nodes_[node].hi) & (t.buckets.size() - 1);
  nodes_[node].next = t.buckets[idx];
  t.buckets[idx] = node;
  ++t.count;
}

// --- Computed cache ---------------------------------------------------------

void Bdd::growCache() {
  std::vector<CacheEntry> old = std::move(cache_);
  cache_.assign(old.size() * 2, CacheEntry{});
  cacheMask_ = static_cast<std::uint32_t>(cache_.size() - 1);
  ++stats_.cacheBitsNow;
  ++stats_.cacheGrows;
  for (const CacheEntry& e : old) {
    if (e.f != kNil) cache_[iteHash(e.f, e.g, e.h) & cacheMask_] = e;
  }
}

void Bdd::flushCache() {
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
}

// --- Literals & core operations --------------------------------------------

Bdd::Ref Bdd::var(std::uint32_t v) {
  SYSECO_CHECK(v < numVars_);
  OpScope scope(*this);
  return makeNode(v, kFalse, kTrue);
}

Bdd::Ref Bdd::nvar(std::uint32_t v) {
  SYSECO_CHECK(v < numVars_);
  OpScope scope(*this);
  return makeNode(v, kTrue, kFalse);
}

Bdd::Ref Bdd::ite(Ref f, Ref g, Ref h) {
  OpScope scope(*this);
  return iteRec(f, g, h);
}

Bdd::Ref Bdd::bXor(Ref a, Ref b) {
  // One scope for both ite steps: a reorder may fire at entry (a and b
  // are the caller's responsibility there), but never between computing
  // !b and consuming it.
  OpScope scope(*this);
  return iteRec(a, iteRec(b, kFalse, kTrue), b);
}

Bdd::Ref Bdd::bXnor(Ref a, Ref b) {
  OpScope scope(*this);
  return iteRec(a, b, iteRec(b, kFalse, kTrue));
}

Bdd::Ref Bdd::iteRec(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::size_t slot = iteHash(f, g, h) & cacheMask_;
  {
    const CacheEntry& e = cache_[slot];
    if (e.f == f && e.g == g && e.h == h) {
      ++stats_.cacheHits;
      return e.r;
    }
  }
  ++stats_.cacheMisses;

  // Branch on the root-most top variable under the current order.
  std::uint32_t v = topVar(f);
  std::uint32_t lv = topLevel(f);
  if (topLevel(g) < lv) {
    lv = topLevel(g);
    v = topVar(g);
  }
  if (topLevel(h) < lv) v = topVar(h);
  const Ref lo = iteRec(low(f, v), low(g, v), low(h, v));
  const Ref hi = iteRec(high(f, v), high(g, v), high(h, v));
  const Ref r = makeNode(v, lo, hi);
  CacheEntry& e = cache_[slot];
  if (e.f != kNil && !(e.f == f && e.g == g && e.h == h))
    ++stats_.cacheEvictions;
  e = CacheEntry{f, g, h, r};
  return r;
}

Bdd::Ref Bdd::andMany(const std::vector<Ref>& fs) {
  // The accumulator lives across operation boundaries, so it must be
  // pinned: an auto-reorder firing before the next bAnd could otherwise
  // detach it (it is reachable from no caller-held root).
  ScopedRef acc(*this, kTrue);
  for (Ref f : fs) acc = bAnd(acc, f);
  return acc;
}

Bdd::Ref Bdd::orMany(const std::vector<Ref>& fs) {
  ScopedRef acc(*this, kFalse);
  for (Ref f : fs) acc = bOr(acc, f);
  return acc;
}

std::size_t Bdd::pinRef(Ref r) {
  if (!pinnedFree_.empty()) {
    const std::size_t slot = pinnedFree_.back();
    pinnedFree_.pop_back();
    pinned_[slot] = r;
    return slot;
  }
  pinned_.push_back(r);
  return pinned_.size() - 1;
}

void Bdd::unpinRef(std::size_t slot) {
  pinned_[slot] = kNil;
  pinnedFree_.push_back(slot);
}

Bdd::Ref Bdd::cofactor(Ref f, std::uint32_t v, bool positive) {
  if (f <= 1) return f;
  OpScope scope(*this);
  const std::uint32_t t = topVar(f);
  if (level_[t] > level_[v]) return f;
  if (t == v) return positive ? nodes_[f].hi : nodes_[f].lo;
  // Recurse; small helper via ite-style decomposition without caching is
  // acceptable here because cofactor is only applied near the root in this
  // codebase, but we cache through the quantifier machinery instead.
  const Ref lo = cofactor(nodes_[f].lo, v, positive);
  const Ref hi = cofactor(nodes_[f].hi, v, positive);
  return makeNode(t, lo, hi);
}

Bdd::Ref Bdd::quantify(Ref f, const std::vector<char>& mask, bool existential,
                       std::unordered_map<Ref, Ref>& cache) {
  if (f <= 1) return f;
  if (auto it = cache.find(f); it != cache.end()) return it->second;
  const std::uint32_t v = nodes_[f].var;
  const Ref lo = quantify(nodes_[f].lo, mask, existential, cache);
  const Ref hi = quantify(nodes_[f].hi, mask, existential, cache);
  Ref r;
  if (mask[v]) {
    r = existential ? bOr(lo, hi) : bAnd(lo, hi);
  } else {
    r = makeNode(v, lo, hi);
  }
  cache.emplace(f, r);
  return r;
}

Bdd::Ref Bdd::exists(Ref f, const std::vector<std::uint32_t>& vars) {
  std::vector<char> mask(numVars_, 0);
  for (auto v : vars) {
    SYSECO_CHECK(v < numVars_);
    mask[v] = 1;
  }
  OpScope scope(*this);
  std::unordered_map<Ref, Ref> cache;
  return quantify(f, mask, /*existential=*/true, cache);
}

Bdd::Ref Bdd::forall(Ref f, const std::vector<std::uint32_t>& vars) {
  std::vector<char> mask(numVars_, 0);
  for (auto v : vars) {
    SYSECO_CHECK(v < numVars_);
    mask[v] = 1;
  }
  OpScope scope(*this);
  std::unordered_map<Ref, Ref> cache;
  return quantify(f, mask, /*existential=*/false, cache);
}

Bdd::Ref Bdd::composeRec(Ref f, std::uint32_t v, Ref g,
                         std::unordered_map<Ref, Ref>& cache) {
  if (f <= 1) return f;
  const std::uint32_t t = nodes_[f].var;
  if (level_[t] > level_[v]) return f;  // v cannot appear below its own level
  if (auto it = cache.find(f); it != cache.end()) return it->second;
  Ref r;
  if (t == v) {
    r = iteRec(g, nodes_[f].hi, nodes_[f].lo);
  } else {
    const Ref lo = composeRec(nodes_[f].lo, v, g, cache);
    const Ref hi = composeRec(nodes_[f].hi, v, g, cache);
    // g may depend on variables above t, so rebuild through ite.
    r = iteRec(makeNode(t, kFalse, kTrue), hi, lo);
  }
  cache.emplace(f, r);
  return r;
}

Bdd::Ref Bdd::compose(Ref f, std::uint32_t v, Ref g) {
  SYSECO_CHECK(v < numVars_);
  OpScope scope(*this);
  std::unordered_map<Ref, Ref> cache;
  return composeRec(f, v, g, cache);
}

std::vector<std::uint32_t> Bdd::support(Ref f) {
  std::vector<char> seenVar(numVars_, 0);
  std::unordered_map<Ref, char> visited;
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    const Ref r = stack.back();
    stack.pop_back();
    if (r <= 1 || visited.count(r)) continue;
    visited.emplace(r, 1);
    seenVar[nodes_[r].var] = 1;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < numVars_; ++v)
    if (seenVar[v]) out.push_back(v);
  return out;
}

double Bdd::satCountRec(Ref f, std::unordered_map<Ref, double>& cache) {
  // Counts assignments to the variables at levels [topLevel(f), numVars).
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  if (auto it = cache.find(f); it != cache.end()) return it->second;
  const Node& n = nodes_[f];
  const std::uint32_t lvl = level_[n.var];
  const double cl = satCountRec(n.lo, cache) *
                    std::exp2(static_cast<double>(topLevel(n.lo) - lvl - 1));
  const double ch = satCountRec(n.hi, cache) *
                    std::exp2(static_cast<double>(topLevel(n.hi) - lvl - 1));
  const double c = cl + ch;
  cache.emplace(f, c);
  return c;
}

double Bdd::satCount(Ref f) {
  std::unordered_map<Ref, double> cache;
  return satCountRec(f, cache) * std::exp2(static_cast<double>(topLevel(f)));
}

bool Bdd::pickCube(Ref f, BddCube& out) {
  if (f == kFalse) return false;
  out.lits.assign(numVars_, -1);
  while (f != kTrue) {
    const Node& n = nodes_[f];
    if (n.lo != kFalse) {
      out.lits[n.var] = 0;
      f = n.lo;
    } else {
      out.lits[n.var] = 1;
      f = n.hi;
    }
  }
  return true;
}

std::vector<BddCube> Bdd::isopRun(Ref l, Ref u, Ref& coverOut) {
  // Minato-Morreale ISOP step: produces an irredundant cover F with
  // l <= F <= u. The cube lists of the three sub-covers are combined,
  // not nested, hence the explicit coverOut accumulator.
  if (l == kFalse) {
    coverOut = kFalse;
    return {};
  }
  if (u == kTrue) {
    coverOut = kTrue;
    BddCube all;
    all.lits.assign(numVars_, -1);
    return {all};
  }
  const std::uint32_t v = topLevel(l) <= topLevel(u) ? topVar(l) : topVar(u);
  const Ref l0 = low(l, v), l1 = high(l, v);
  const Ref u0 = low(u, v), u1 = high(u, v);

  // Cubes that must contain literal !v / v.
  Ref f0 = kFalse, f1 = kFalse;
  auto c0 = isopRun(bAnd(l0, bNot(u1)), u0, f0);
  auto c1 = isopRun(bAnd(l1, bNot(u0)), u1, f1);
  for (auto& c : c0) c.lits[v] = 0;
  for (auto& c : c1) c.lits[v] = 1;

  // Remaining onset handled by cubes independent of v.
  const Ref ld = bOr(bAnd(l0, bNot(f0)), bAnd(l1, bNot(f1)));
  const Ref ud = bAnd(u0, u1);
  Ref fd = kFalse;
  auto cd = isopRun(ld, ud, fd);

  coverOut = makeNode(v, bOr(f0, fd), bOr(f1, fd));
  std::vector<BddCube> all;
  all.reserve(c0.size() + c1.size() + cd.size());
  for (auto& c : c0) all.push_back(std::move(c));
  for (auto& c : c1) all.push_back(std::move(c));
  for (auto& c : cd) all.push_back(std::move(c));
  return all;
}

std::vector<BddCube> Bdd::isop(Ref lower, Ref upper) {
  OpScope scope(*this);
  SYSECO_CHECK(iteRec(lower, upper, kTrue) == kTrue);  // lower implies upper
  Ref cover = kFalse;
  auto cubes = isopRun(lower, upper, cover);
  // Sanity: the produced cover must lie between the bounds.
  SYSECO_CHECK(iteRec(lower, cover, kTrue) == kTrue);
  SYSECO_CHECK(iteRec(cover, upper, kTrue) == kTrue);
  return cubes;
}

bool Bdd::eval(Ref f, const std::vector<std::uint8_t>& assignment) const {
  SYSECO_CHECK(assignment.size() >= numVars_);
  while (f > 1) {
    const Node& n = nodes_[f];
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

Bdd::Ref Bdd::fromTruthTableRec(const std::vector<std::uint64_t>& bits,
                                const std::vector<std::uint32_t>& vars,
                                std::size_t varPos, std::size_t offset,
                                std::size_t width) {
  auto bitAt = [&](std::size_t k) {
    return (bits[k / 64] >> (k % 64)) & 1;
  };
  if (width == 1) return bitAt(offset) ? kTrue : kFalse;
  // vars[varPos-1] is the highest remaining selector; splitting on it keeps
  // the little-endian convention: bit j of the index drives vars[j].
  const std::size_t half = width / 2;
  const Ref lo = fromTruthTableRec(bits, vars, varPos - 1, offset, half);
  const Ref hi = fromTruthTableRec(bits, vars, varPos - 1, offset + half, half);
  if (lo == hi) return lo;
  // The nodes must respect the manager order, so combine through ite on the
  // selector variable (vars need not be sorted).
  return iteRec(makeNode(vars[varPos - 1], kFalse, kTrue), hi, lo);
}

Bdd::Ref Bdd::fromTruthTable(const std::vector<std::uint64_t>& bits,
                             const std::vector<std::uint32_t>& vars) {
  const std::size_t width = std::size_t{1} << vars.size();
  SYSECO_CHECK(bits.size() * 64 >= width);
  if (vars.empty()) return (bits[0] & 1) ? kTrue : kFalse;
  OpScope scope(*this);
  return fromTruthTableRec(bits, vars, vars.size(), 0, width);
}

Bdd::Ref Bdd::mintermOf(std::uint32_t index,
                        const std::vector<std::uint32_t>& vars) {
  // Big-endian: vars[0] is the most significant bit of index (paper's v^i).
  // One scope for the whole chain: the accumulator and the fresh literal
  // nodes are reachable from no caller-held root, so no reorder may fire
  // between the steps.
  OpScope scope(*this);
  Ref acc = kTrue;
  const std::size_t n = vars.size();
  for (std::size_t j = 0; j < n; ++j) {
    SYSECO_CHECK(vars[j] < numVars_);
    const bool bit = (index >> (n - 1 - j)) & 1;
    const Ref lit = makeNode(vars[j], bit ? kFalse : kTrue,
                             bit ? kTrue : kFalse);
    acc = iteRec(acc, lit, kFalse);
  }
  return acc;
}

// --- Reordering -------------------------------------------------------------

void Bdd::maybeAutoReorder() {
  // Cache growth is deferred to operation boundaries so no CacheEntry
  // reference ever dangles mid-recursion. Policy: double once misses since
  // the last growth exceed four fills of the current capacity.
  if (stats_.cacheBitsNow < cfg_.maxCacheBits &&
      stats_.cacheMisses - cacheMissesAtGrow_ > 4 * cache_.size()) {
    growCache();
    cacheMissesAtGrow_ = stats_.cacheMisses;
  }
  if (!needReorder_ || inReorder_) return;
  needReorder_ = false;
  if (cfg_.reorder == BddReorder::kOff || !rootProvider_) return;
  std::vector<Ref> roots;
  rootProvider_(roots);
  runReorder(roots);
}

std::size_t Bdd::reorderNow(const std::vector<Ref>& roots) {
  SYSECO_CHECK(opDepth_ == 0 && !inReorder_);
  return runReorder(roots);
}

void Bdd::incRef(Ref r) {
  if (r <= 1) return;
  if (liveRefs_.size() < nodes_.size()) liveRefs_.resize(nodes_.size(), 0);
  std::vector<Ref> stack{r};
  while (!stack.empty()) {
    const Ref p = stack.back();
    stack.pop_back();
    if (p <= 1) continue;
    if (liveRefs_[p]++ == 0) {
      ++liveSize_;
      // A node coming alive contributes one reference to each child.
      stack.push_back(nodes_[p].lo);
      stack.push_back(nodes_[p].hi);
    }
  }
}

void Bdd::decRef(Ref r) {
  if (r <= 1) return;
  std::vector<Ref> stack{r};
  while (!stack.empty()) {
    const Ref p = stack.back();
    stack.pop_back();
    if (p <= 1) continue;
    if (--liveRefs_[p] == 0) {
      --liveSize_;
      stack.push_back(nodes_[p].lo);
      stack.push_back(nodes_[p].hi);
    }
  }
}

void Bdd::swapLevels(std::uint32_t l) {
  const std::uint32_t x = varAtLevel_[l];
  const std::uint32_t y = varAtLevel_[l + 1];
  auto liveCount = [&](Ref r) {
    return r < liveRefs_.size() ? liveRefs_[r] : 0u;
  };

  // Only x-nodes whose children involve y are touched by the swap; all
  // other triples remain properly ordered when the two levels flip.
  std::vector<Ref> pending;
  for (Ref b : tables_[x].buckets) {
    for (Ref p = b; p != kNil; p = nodes_[p].next) {
      if (topVar(nodes_[p].lo) == y || topVar(nodes_[p].hi) == y)
        pending.push_back(p);
    }
  }

  // Phase A - allocation only, no mutation, so a budget trip mid-swap
  // leaves the manager consistent. A live rewritten node still depends on
  // x afterwards, and no pre-existing y-node can depend on x (x was above
  // it), so the rewritten triple can never collide with a table-resident
  // node: the node keeps its Ref and its function without forwarding.
  struct Rewrite {
    Ref node, g0, g1;
  };
  std::vector<Rewrite> rewrites;
  std::vector<Ref> detach;
  rewrites.reserve(pending.size());
  for (Ref p : pending) {
    if (liveCount(p) == 0) {
      // Dead node whose triple would violate the new order: unlink it in
      // phase B instead of spending allocations restructuring garbage.
      detach.push_back(p);
      continue;
    }
    const Node n = nodes_[p];  // by value: makeNode may reallocate nodes_
    const bool loY = topVar(n.lo) == y;
    const bool hiY = topVar(n.hi) == y;
    const Ref f00 = loY ? nodes_[n.lo].lo : n.lo;
    const Ref f01 = loY ? nodes_[n.lo].hi : n.lo;
    const Ref f10 = hiY ? nodes_[n.hi].lo : n.hi;
    const Ref f11 = hiY ? nodes_[n.hi].hi : n.hi;
    const Ref g0 = makeNode(x, f00, f10);
    const Ref g1 = makeNode(x, f01, f11);
    rewrites.push_back(Rewrite{p, g0, g1});
  }

  // Phase B - mutation only, no allocation that can trip a budget.
  for (const Rewrite& rw : rewrites) unlinkFromTable(x, rw.node);
  for (Ref p : detach) {
    unlinkFromTable(x, p);
    nodes_[p].var = kDetachedVar;
  }
  for (const Rewrite& rw : rewrites) {
    const Node old = nodes_[rw.node];
    incRef(rw.g0);
    incRef(rw.g1);
    nodes_[rw.node] = Node{y, rw.g0, rw.g1, kNil};
    if (liveAtVar_.size() > y) {
      --liveAtVar_[x];
      ++liveAtVar_[y];
    }
    linkIntoTable(y, rw.node);
    decRef(old.lo);
    decRef(old.hi);
  }
  varAtLevel_[l] = y;
  varAtLevel_[l + 1] = x;
  level_[x] = l + 1;
  level_[y] = l;
  ++stats_.swaps;
  if (tables_[y].count > 2 * tables_[y].buckets.size()) growSubTable(y);
}

void Bdd::siftVar(std::uint32_t v) {
  if (guard_ != nullptr) {
    // Reordering is bulk work between user operations: poll the governor
    // once per sifted variable so an expired deadline unwinds promptly
    // (StatusError passes through; a budget trip aborts the pass).
    const Status s = guard_->checkpoint("bdd-reorder");
    if (!s.isOk()) {
      if (s.code() == StatusCode::kDeadlineExceeded) throw StatusError(s);
      throw BddLimitExceeded{};
    }
  }
  const std::uint32_t start = level_[v];
  const std::size_t startSize = liveSize_;
  const std::size_t limit =
      static_cast<std::size_t>(static_cast<double>(startSize) *
                               cfg_.maxSiftGrowth) + 1;
  std::size_t bestSize = liveSize_;
  std::uint32_t bestLevel = start;

  auto record = [&] {
    if (liveSize_ < bestSize) {
      bestSize = liveSize_;
      bestLevel = level_[v];
    }
  };
  auto siftDown = [&] {
    while (level_[v] + 1 < numVars_) {
      swapLevels(level_[v]);
      record();
      if (liveSize_ > limit) break;
    }
  };
  auto siftUp = [&] {
    while (level_[v] > 0) {
      swapLevels(level_[v] - 1);
      record();
      if (liveSize_ > limit) break;
    }
  };
  auto moveTo = [&](std::uint32_t target) {
    while (level_[v] > target) swapLevels(level_[v] - 1);
    while (level_[v] < target) swapLevels(level_[v]);
  };

  // Sweep toward the nearer end first, then across, then park at the best
  // position seen. Swapped-out nodes persist in the arena, so the return
  // trip mostly rediscovers existing nodes instead of allocating.
  if (start >= numVars_ / 2) {
    siftDown();
    siftUp();
  } else {
    siftUp();
    siftDown();
  }
  moveTo(bestLevel);
}

void Bdd::siftPass(std::vector<std::uint32_t>& varsBySize) {
  std::stable_sort(varsBySize.begin(), varsBySize.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return liveAtVar_[a] > liveAtVar_[b];
                   });
  for (std::uint32_t v : varsBySize) {
    if (liveAtVar_[v] == 0) continue;
    siftVar(v);
  }
}

std::size_t Bdd::runReorder(const std::vector<Ref>& roots) {
  inReorder_ = true;
  needReorder_ = false;
  liveRefs_.assign(nodes_.size(), 0);
  liveAtVar_.assign(numVars_, 0);
  liveSize_ = 0;
  struct Cleanup {
    Bdd& m;
    ~Cleanup() {
      m.liveRefs_.clear();
      m.liveRefs_.shrink_to_fit();
      m.liveAtVar_.clear();
      m.liveSize_ = 0;
      // Detached nodes may linger in cache slots; a flush makes every
      // cached triple trivially safe under the new order.
      m.flushCache();
      m.inReorder_ = false;
      m.needReorder_ = false;
      if (m.nextReorderAt_ != 0) {
        m.nextReorderAt_ = std::max(
            m.cfg_.reorderThreshold,
            static_cast<std::size_t>(static_cast<double>(m.nodes_.size()) *
                                     m.cfg_.reorderGrowth));
      }
    }
  } cleanup{*this};

  for (Ref r : roots) incRef(r);
  for (Ref r : pinned_)
    if (r != kNil) incRef(r);
  for (Ref p = 2; p < nodes_.size(); ++p) {
    if (liveRefs_[p] != 0 && nodes_[p].var != kDetachedVar)
      ++liveAtVar_[nodes_[p].var];
  }
  std::vector<std::uint32_t> vars(numVars_);
  for (std::uint32_t v = 0; v < numVars_; ++v) vars[v] = v;

  const int maxPasses = cfg_.reorder == BddReorder::kSiftConverge ? 4 : 1;
  try {
    for (int pass = 0; pass < maxPasses; ++pass) {
      const std::size_t before = liveSize_;
      siftPass(vars);
      ++stats_.reorders;
      // Converge when a pass recovers less than 2% of live size.
      if (liveSize_ + liveSize_ / 50 >= before) break;
    }
  } catch (const BddLimitExceeded&) {
    // Out of nodes mid-sift: the table is consistent at every swap
    // boundary, so abandon the pass and let the interrupted operation
    // decide its own fate against the same budget.
  }
  return liveSize_;
}

}  // namespace syseco
