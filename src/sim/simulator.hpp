#pragma once
// Bit-parallel combinational simulation.
//
// The simulator evaluates a netlist over W machine words per net, i.e.
// 64*W input patterns at once. It is the workhorse behind:
//  * failing-output detection (C vs C' signature comparison),
//  * the symbolic-sampling domain: each net's value vector on the N sampled
//    assignments is exactly its function in the sampling domain (paper §5.1),
//  * the rectification-utility heuristic (paper §4.3),
//  * sweeping (signature-based equivalence candidates).

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace syseco {

/// A pattern assignment: one bit per primary input.
using InputPattern = std::vector<std::uint8_t>;

/// Multi-word signature of a net over the simulated patterns.
using Signature = std::vector<std::uint64_t>;

class Simulator {
 public:
  /// Prepares simulation storage for `words` 64-pattern words per net.
  Simulator(const Netlist& netlist, std::size_t words);

  std::size_t words() const { return words_; }
  std::size_t numPatterns() const { return words_ * 64; }

  /// Fills all input words with uniformly random patterns.
  void randomizeInputs(Rng& rng);

  /// Loads explicit patterns: patterns[k] is the assignment for pattern k
  /// (bit k of the words). Unused tail slots are zero-filled (the all-zero
  /// assignment); consumers that aggregate over whole words must mask the
  /// tail out, or the duplicated tail assignment biases their statistics
  /// (the sampling code tracks a per-sample validity mask for this reason).
  void loadPatterns(const std::vector<InputPattern>& patterns);

  /// Sets input i's value word w directly.
  void setInputWord(std::uint32_t input, std::size_t word, std::uint64_t bits);

  /// Evaluates all live gates in topological order.
  void run();

  /// Re-evaluates after inputs changed; identical to run() (full pass).
  void rerun() { run(); }

  const Signature& value(NetId net) const { return values_[net]; }
  std::uint64_t word(NetId net, std::size_t w) const { return values_[net][w]; }

  /// Value of `net` under pattern index k.
  bool bit(NetId net, std::size_t k) const {
    return (values_[net][k / 64] >> (k % 64)) & 1;
  }

  /// Reconstructs the full input assignment of pattern index k from the
  /// currently loaded input words. The certification oracle uses this to
  /// turn a mismatching signature bit back into a concrete counterexample.
  InputPattern inputPatternAt(std::size_t k) const;

  /// Output signature by output index.
  const Signature& outputValue(std::uint32_t o) const {
    return values_[netlist_.outputNet(o)];
  }

  const Netlist& netlist() const { return netlist_; }

  /// Number of nets captured at construction (the netlist may grow later;
  /// values exist only for nets below this bound).
  std::size_t numNetsSimulated() const { return values_.size(); }

 private:
  const Netlist& netlist_;
  std::size_t words_;
  std::vector<Signature> values_;  // per net
  std::vector<GateId> topo_;
};

/// Evaluates `netlist` on a single input assignment; returns output bits.
std::vector<std::uint8_t> evalOnce(const Netlist& netlist,
                                   const InputPattern& inputs);

/// Evaluates a single net on a single input assignment.
bool evalNetOnce(const Netlist& netlist, NetId net, const InputPattern& in);

}  // namespace syseco
