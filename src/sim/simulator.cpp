#include "sim/simulator.hpp"

#include "util/check.hpp"

namespace syseco {

Simulator::Simulator(const Netlist& netlist, std::size_t words)
    : netlist_(netlist), words_(words), topo_(netlist.topoOrder()) {
  SYSECO_CHECK(words_ > 0);
  values_.assign(netlist.numNetsTotal(), Signature(words_, 0));
}

void Simulator::randomizeInputs(Rng& rng) {
  for (std::size_t i = 0; i < netlist_.numInputs(); ++i) {
    Signature& sig = values_[netlist_.inputNet(static_cast<std::uint32_t>(i))];
    for (std::size_t w = 0; w < words_; ++w) sig[w] = rng.next();
  }
}

void Simulator::loadPatterns(const std::vector<InputPattern>& patterns) {
  SYSECO_CHECK(!patterns.empty());
  SYSECO_CHECK(patterns.size() <= numPatterns());
  for (const InputPattern& p : patterns)
    SYSECO_CHECK(p.size() == netlist_.numInputs());
  for (std::size_t i = 0; i < netlist_.numInputs(); ++i) {
    Signature& sig = values_[netlist_.inputNet(static_cast<std::uint32_t>(i))];
    for (std::size_t w = 0; w < words_; ++w) sig[w] = 0;
    for (std::size_t k = 0; k < patterns.size(); ++k) {
      if (patterns[k][i]) sig[k / 64] |= (1ULL << (k % 64));
    }
  }
}

void Simulator::setInputWord(std::uint32_t input, std::size_t word,
                             std::uint64_t bits) {
  values_[netlist_.inputNet(input)][word] = bits;
}

InputPattern Simulator::inputPatternAt(std::size_t k) const {
  SYSECO_CHECK(k < numPatterns());
  InputPattern pattern(netlist_.numInputs(), 0);
  for (std::size_t i = 0; i < netlist_.numInputs(); ++i)
    pattern[i] =
        bit(netlist_.inputNet(static_cast<std::uint32_t>(i)), k) ? 1 : 0;
  return pattern;
}

void Simulator::run() {
  // The fanin Signature lookups are hoisted out of the word loop: each
  // gate resolves values_[fanin] once into a pointer array, so the hot
  // inner loop touches only the cached word pointers (the per-word
  // indirection through values_ used to dominate wide simulations).
  const std::uint64_t* faninSigs[16];
  std::uint64_t faninWords[16];
  std::vector<const std::uint64_t*> bigSigs;
  std::vector<std::uint64_t> bigFanins;
  for (GateId g : topo_) {
    const Netlist::Gate& gate = netlist_.gate(g);
    Signature& out = values_[gate.out];
    const std::size_t k = gate.fanins.size();
    if (k <= 16) {
      for (std::size_t i = 0; i < k; ++i)
        faninSigs[i] = values_[gate.fanins[i]].data();
      for (std::size_t w = 0; w < words_; ++w) {
        for (std::size_t i = 0; i < k; ++i) faninWords[i] = faninSigs[i][w];
        out[w] = evalGateWord(gate.type, faninWords, k);
      }
    } else {
      bigSigs.resize(k);
      bigFanins.resize(k);
      for (std::size_t i = 0; i < k; ++i)
        bigSigs[i] = values_[gate.fanins[i]].data();
      for (std::size_t w = 0; w < words_; ++w) {
        for (std::size_t i = 0; i < k; ++i) bigFanins[i] = bigSigs[i][w];
        out[w] = evalGateWord(gate.type, bigFanins.data(), k);
      }
    }
  }
}

std::vector<std::uint8_t> evalOnce(const Netlist& netlist,
                                   const InputPattern& inputs) {
  SYSECO_CHECK(inputs.size() == netlist.numInputs());
  std::vector<std::uint8_t> value(netlist.numNetsTotal(), 0);
  for (std::size_t i = 0; i < netlist.numInputs(); ++i)
    value[netlist.inputNet(static_cast<std::uint32_t>(i))] = inputs[i] ? 1 : 0;
  std::vector<std::uint64_t> fanins;
  for (GateId g : netlist.topoOrder()) {
    const Netlist::Gate& gate = netlist.gate(g);
    fanins.resize(gate.fanins.size());
    for (std::size_t i = 0; i < gate.fanins.size(); ++i)
      fanins[i] = value[gate.fanins[i]] ? ~0ULL : 0;
    value[gate.out] =
        (evalGateWord(gate.type, fanins.data(), fanins.size()) & 1) ? 1 : 0;
  }
  std::vector<std::uint8_t> outs(netlist.numOutputs());
  for (std::size_t o = 0; o < netlist.numOutputs(); ++o)
    outs[o] = value[netlist.outputNet(static_cast<std::uint32_t>(o))];
  return outs;
}

bool evalNetOnce(const Netlist& netlist, NetId net, const InputPattern& in) {
  SYSECO_CHECK(in.size() == netlist.numInputs());
  std::vector<std::uint8_t> value(netlist.numNetsTotal(), 0);
  for (std::size_t i = 0; i < netlist.numInputs(); ++i)
    value[netlist.inputNet(static_cast<std::uint32_t>(i))] = in[i] ? 1 : 0;
  std::vector<std::uint64_t> fanins;
  for (GateId g : netlist.coneGates({net})) {
    const Netlist::Gate& gate = netlist.gate(g);
    fanins.resize(gate.fanins.size());
    for (std::size_t i = 0; i < gate.fanins.size(); ++i)
      fanins[i] = value[gate.fanins[i]] ? ~0ULL : 0;
    value[gate.out] =
        (evalGateWord(gate.type, fanins.data(), fanins.size()) & 1) ? 1 : 0;
  }
  return value[net] != 0;
}

}  // namespace syseco
