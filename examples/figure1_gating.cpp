// The paper's Figure 1 / Example 1 scenario, end to end.
//
// Current implementation: two single-bit multi-sink signals v(0) and v(1)
// gate the words w_in1 and w_in2:
//     w_out = GATE(w_in1, v0) | GATE(w_in2, v1)
// v(0) additionally drives logic (signal d) that the revision must NOT
// disturb.
//
// Revised specification: a new signal c = a AND b replaces the gating:
//     w_out = GATE(w_in1, c) | GATE(w_in2, !c),   d unchanged.
//
// The rectification of choice (Figure 1): rewire all gating sinks of v(0)
// and v(1) to c and !c respectively while *protecting* the remaining sink
// of v(0) that feeds d - small patch, no re-synthesis of the word logic.

#include <cstdio>

#include "eco/syseco.hpp"
#include "netlist/netlist.hpp"

using namespace syseco;

namespace {

constexpr int kWidth = 8;

Netlist buildCircuit(bool revised) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId v0 = nl.addInput("v0");
  const NetId v1 = nl.addInput("v1");
  std::vector<NetId> w1(kWidth), w2(kWidth);
  for (int i = 0; i < kWidth; ++i) {
    w1[i] = nl.addInput("w1_" + std::to_string(i));
    w2[i] = nl.addInput("w2_" + std::to_string(i));
  }

  NetId gate0 = v0, gate1 = v1;
  if (revised) {
    const NetId c = nl.addGate(GateType::And, {a, b});
    gate0 = c;
    gate1 = nl.addGate(GateType::Not, {c});
  }
  for (int i = 0; i < kWidth; ++i) {
    const NetId t1 = nl.addGate(GateType::And, {w1[i], gate0});
    const NetId t2 = nl.addGate(GateType::And, {w2[i], gate1});
    nl.addOutput("out" + std::to_string(i),
                 nl.addGate(GateType::Or, {t1, t2}));
  }
  // The protected signal d = v0 AND a keeps depending on v0 in BOTH
  // versions: the patch must not disturb it.
  nl.addOutput("d", nl.addGate(GateType::And, {v0, a}));
  return nl;
}

}  // namespace

int main() {
  const Netlist impl = buildCircuit(/*revised=*/false);
  const Netlist spec = buildCircuit(/*revised=*/true);

  std::printf("Figure 1 scenario: %d-bit word gating, revision introduces "
              "c = a AND b\n",
              kWidth);
  std::printf("implementation: %zu gates; ideal patch: 2 gates (c, !c)\n",
              impl.countLiveGates());

  SysecoDiagnostics diag;
  const EcoResult result = runSyseco(impl, spec, SysecoOptions{}, &diag);

  std::printf("\nrectification %s in %.2fs\n",
              result.success ? "VERIFIED" : "FAILED", result.seconds);
  std::printf("patch: %zu inputs, %zu outputs (rewired pins), %zu gates, "
              "%zu nets\n",
              result.stats.inputs, result.stats.outputs, result.stats.gates,
              result.stats.nets);
  std::printf("interior rewirings: %zu, cone fallbacks: %zu, SAT "
              "validations: %zu\n",
              diag.outputsViaRewire, diag.outputsViaFallback,
              diag.candidatesValidated);
  if (result.stats.gates <= 4) {
    std::printf("\n=> the engine recovered the Figure-1 rectification: the\n"
                "   gating sinks were rewired to the tiny new condition\n"
                "   logic instead of re-synthesizing the word datapath.\n");
  }
  return result.success ? 0 : 1;
}
