// Symbolic-sampling explorer: shows the §5.1 machinery directly on a
// public API level - error-domain sample collection, the signature-to-BDD
// bridge, and how domain size controls the precision of sampling-domain
// equivalence judgments.

#include <cmath>
#include <cstdio>

#include "bdd/bdd.hpp"
#include "cnf/encode.hpp"
#include "eco/sampling.hpp"
#include "gen/eco_case.hpp"

using namespace syseco;

int main() {
  // A small revised design pair.
  CaseRecipe recipe;
  recipe.name = "sampling-demo";
  recipe.spec = SpecParams{3, 6, 3, 2, 5, 4, 3, 3};
  recipe.mutations = 1;
  recipe.targetRevisedFraction = 0.3;
  recipe.optRounds = 2;
  recipe.seed = 99;
  const EcoCase c = makeCase(recipe);

  Rng rng(1);
  const auto failing = findFailingOutputs(c.impl, c.spec, rng);
  if (failing.empty()) {
    std::printf("no failing outputs (unexpected)\n");
    return 1;
  }
  const std::uint32_t o = failing.front();
  const std::uint32_t op = c.spec.findOutput(c.impl.outputName(o));
  std::printf("failing output: %s (impl #%u)\n",
              c.impl.outputName(o).c_str(), o);

  // Collect error-domain samples by SAT enumeration (the sampling domain
  // prefers assignments from E = {x | f(x) != f'(x)}).
  PairEncoding pe(c.impl, c.spec);
  const auto samplesVec = pe.enumerateErrors(o, op, 32, 100000, &rng);
  std::printf("collected %zu error-domain samples\n", samplesVec.size());

  SampleSet samples;
  for (const auto& p : samplesVec) samples.add(p);
  std::printf("sampling domain: N=%zu, z variables=%u, padded=%zu\n",
              samples.count(), samples.numZVars(), samples.paddedCount());

  // Signature -> BDD bridge: each net's sampled function is tiny.
  Rng fill(2);
  Simulator wSim = simulateOnSamples(c.impl, c.impl, samples, fill);
  Simulator sSim = simulateOnSamples(c.spec, c.impl, samples, fill);

  Bdd mgr(samples.numZVars());
  std::vector<std::uint32_t> zVars(samples.numZVars());
  for (std::uint32_t i = 0; i < zVars.size(); ++i) zVars[i] = i;

  const Bdd::Ref fImpl = mgr.fromTruthTable(wSim.outputValue(o), zVars);
  const Bdd::Ref fSpec = mgr.fromTruthTable(sSim.outputValue(op), zVars);
  std::printf("sampled impl function: %.0f of %zu sample points true\n",
              mgr.satCount(fImpl) * static_cast<double>(samples.paddedCount()) /
                  std::exp2(static_cast<double>(zVars.size())),
              samples.paddedCount());
  std::printf("impl != spec on every sample (error-domain sampling): %s\n",
              mgr.bXor(fImpl, fSpec) == Bdd::kTrue ? "yes" : "no");

  // Precision demo: count how many OTHER impl nets look like a valid
  // replacement for the failing output in the sampling domain (false
  // positives shrink as N grows).
  for (const std::size_t n : {4u, 8u, 16u, 32u}) {
    if (n > samples.count()) break;
    SampleSet sub;
    for (std::size_t k = 0; k < n; ++k) sub.add(samplesVec[k]);
    Rng f2(3);
    Simulator ws = simulateOnSamples(c.impl, c.impl, sub, f2);
    Simulator ss = simulateOnSamples(c.spec, c.impl, sub, f2);
    const Signature& want = ss.outputValue(op);
    const auto mask = errorMask(Signature(sub.simWords(), ~0ULL),
                                Signature(sub.simWords(), 0), sub);
    std::size_t lookalikes = 0;
    for (NetId net = 0; net < c.impl.numNetsTotal(); ++net) {
      const auto& netRef = c.impl.net(net);
      const bool driven =
          netRef.srcKind != Netlist::SourceKind::None;
      if (!driven) continue;
      bool same = true;
      for (std::size_t wd = 0; wd < mask.size() && same; ++wd)
        same = ((ws.value(net)[wd] ^ want[wd]) & mask[wd]) == 0;
      lookalikes += same;
    }
    std::printf("  N=%2zu: %zu impl nets indistinguishable from the revised "
                "output\n",
                n, lookalikes);
  }
  std::printf("=> more samples, fewer false candidates - the paper's "
              "precision/complexity trade-off.\n");
  return 0;
}
