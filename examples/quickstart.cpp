// Quickstart: the minimal end-to-end ECO flow.
//
// 1. Build an optimized implementation C (here: a tiny ALU slice).
// 2. Build the revised specification C' (the same design with a functional
//    change a designer would make).
// 3. Run the syseco engine and inspect the verified patch.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "eco/syseco.hpp"
#include "io/netlist_io.hpp"
#include "netlist/netlist.hpp"

using namespace syseco;

namespace {

/// A 4-bit AND/OR selectable unit: out = sel ? (a & b) : (a | b).
Netlist buildImplementation() {
  Netlist nl;
  const NetId sel = nl.addInput("sel");
  std::vector<NetId> a(4), b(4);
  for (int i = 0; i < 4; ++i) {
    a[i] = nl.addInput("a" + std::to_string(i));
    b[i] = nl.addInput("b" + std::to_string(i));
  }
  for (int i = 0; i < 4; ++i) {
    const NetId andBit = nl.addGate(GateType::And, {a[i], b[i]});
    const NetId orBit = nl.addGate(GateType::Or, {a[i], b[i]});
    nl.addOutput("out" + std::to_string(i),
                 nl.addGate(GateType::Mux, {sel, orBit, andBit}));
  }
  return nl;
}

/// The revision: the OR mode becomes XOR (a late functional change).
Netlist buildRevisedSpec() {
  Netlist nl;
  const NetId sel = nl.addInput("sel");
  std::vector<NetId> a(4), b(4);
  for (int i = 0; i < 4; ++i) {
    a[i] = nl.addInput("a" + std::to_string(i));
    b[i] = nl.addInput("b" + std::to_string(i));
  }
  for (int i = 0; i < 4; ++i) {
    const NetId andBit = nl.addGate(GateType::And, {a[i], b[i]});
    const NetId xorBit = nl.addGate(GateType::Xor, {a[i], b[i]});  // changed
    nl.addOutput("out" + std::to_string(i),
                 nl.addGate(GateType::Mux, {sel, xorBit, andBit}));
  }
  return nl;
}

}  // namespace

int main() {
  const Netlist impl = buildImplementation();
  const Netlist spec = buildRevisedSpec();

  std::printf("implementation: %zu gates, %zu outputs\n",
              impl.countLiveGates(), impl.numOutputs());

  SysecoDiagnostics diag;
  const EcoResult result = runSyseco(impl, spec, SysecoOptions{}, &diag);

  std::printf("rectification %s in %.2fs\n",
              result.success ? "VERIFIED" : "FAILED", result.seconds);
  std::printf("failing outputs before: %zu\n", result.failingOutputsBefore);
  std::printf("patch: %zu inputs, %zu outputs, %zu gates, %zu nets\n",
              result.stats.inputs, result.stats.outputs, result.stats.gates,
              result.stats.nets);
  std::printf("outputs fixed by interior rewiring: %zu, by cone fallback: "
              "%zu\n",
              diag.outputsViaRewire, diag.outputsViaFallback);

  // The patched netlist is a normal netlist: dump it.
  std::printf("\npatched implementation (text format):\n");
  saveNetlist("/tmp/quickstart_patched.netlist", result.rectified,
              "quickstart_patched");
  std::printf("written to /tmp/quickstart_patched.netlist\n");
  return result.success ? 0 : 1;
}
