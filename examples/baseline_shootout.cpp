// Five-engine shootout on one generated ECO: the §2 taxonomy, live.
//
//   conesynth - structurally naive cone replication ("commercial" proxy)
//   deltasyn  - structural matching, difference-region extraction [8]
//   exactfix  - exact BDD single-point rectification ([9]-style)
//   interpfix - Craig-interpolation patch functions ([19]/[5]-style)
//   syseco    - the paper's rewire-based symbolic-sampling engine

#include <cstdio>

#include "eco/conesynth.hpp"
#include "eco/deltasyn.hpp"
#include "eco/exactfix.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "itp/interp_fix.hpp"

using namespace syseco;

int main() {
  CaseRecipe recipe;
  recipe.name = "shootout";
  recipe.spec = SpecParams{4, 8, 5, 3, 7, 5, 4, 5};
  recipe.mutations = 3;
  recipe.targetRevisedFraction = 0.25;
  recipe.optRounds = 3;
  recipe.seed = 424242;

  std::printf("generating '%s'...\n", recipe.name.c_str());
  const EcoCase c = makeCase(recipe);
  std::printf("implementation %zu gates | revised spec %zu gates | designer "
              "estimate %zu gates\n\n",
              c.impl.countLiveGates(), c.spec.countLiveGates(),
              c.designerEstimateGates);

  std::printf("%-10s | %4s | %5s %5s %5s %5s | %8s\n", "engine", "ok", "in",
              "out", "gate", "net", "time,s");
  std::printf("--------------------------------------------------------\n");
  auto row = [](const char* name, const EcoResult& r) {
    std::printf("%-10s | %4s | %5zu %5zu %5zu %5zu | %8.2f\n", name,
                r.success ? "yes" : "NO", r.stats.inputs, r.stats.outputs,
                r.stats.gates, r.stats.nets, r.seconds);
    std::fflush(stdout);
  };
  row("conesynth", runConeSynth(c.impl, c.spec));
  row("deltasyn", runDeltaSyn(c.impl, c.spec));
  row("exactfix", runExactFix(c.impl, c.spec));
  row("interpfix", runInterpFix(c.impl, c.spec));
  row("syseco", runSyseco(c.impl, c.spec));
  std::printf("--------------------------------------------------------\n");
  std::printf("every 'ok' patch is SAT-proven equivalent to the revised "
              "spec.\n");
  return 0;
}
