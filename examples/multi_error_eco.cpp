// Multi-error ECO on a generated "microprocessor-like" design: several
// functional revisions at once, heavily optimized implementation, and a
// three-way engine comparison - the workload of the paper's evaluation in
// one runnable example.

#include <cstdio>

#include "eco/conesynth.hpp"
#include "eco/deltasyn.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"

using namespace syseco;

int main() {
  CaseRecipe recipe;
  recipe.name = "multi-error-demo";
  recipe.spec = SpecParams{5, 10, 6, 4, 9, 6, 4, 6};
  recipe.mutations = 4;              // four simultaneous revisions
  recipe.targetRevisedFraction = 0.3;
  recipe.optRounds = 3;
  recipe.seed = 20260707;

  std::printf("generating case '%s'...\n", recipe.name.c_str());
  const EcoCase c = makeCase(recipe);
  std::printf("implementation: %zu gates; revised spec: %zu gates\n",
              c.impl.countLiveGates(), c.spec.countLiveGates());
  std::printf("injected revisions (%zu total, designer estimate %zu "
              "gates):\n",
              c.revisions.size(), c.designerEstimateGates);
  for (const MutationReport& r : c.revisions)
    std::printf("  - %-16s (%zu gates at spec level)\n",
                mutationKindName(r.kind), r.gatesAdded);

  auto report = [](const char* name, const EcoResult& r) {
    std::printf("%-10s %s | in %4zu out %4zu gates %4zu nets %4zu | %6.2fs\n",
                name, r.success ? "ok " : "FAIL", r.stats.inputs,
                r.stats.outputs, r.stats.gates, r.stats.nets, r.seconds);
  };

  std::printf("\nengine comparison:\n");
  report("commercial", runConeSynth(c.impl, c.spec));
  report("deltasyn", runDeltaSyn(c.impl, c.spec));
  SysecoDiagnostics diag;
  const EcoResult sys = runSyseco(c.impl, c.spec, SysecoOptions{}, &diag);
  report("syseco", sys);
  std::printf("\nsyseco details: %zu outputs rewired in place, %zu via "
              "matched cone fallback,\n%zu SAT validations (%zu sampling "
              "false positives refuted), %zu sweep merges\n",
              diag.outputsViaRewire, diag.outputsViaFallback,
              diag.candidatesValidated, diag.candidatesRefuted,
              diag.sweepMerges);
  return sys.success ? 0 : 1;
}
