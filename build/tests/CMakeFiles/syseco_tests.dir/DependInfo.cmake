
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bdd.cpp" "tests/CMakeFiles/syseco_tests.dir/test_bdd.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_bdd.cpp.o.d"
  "/root/repo/tests/test_bdd_exhaustive.cpp" "tests/CMakeFiles/syseco_tests.dir/test_bdd_exhaustive.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_bdd_exhaustive.cpp.o.d"
  "/root/repo/tests/test_bdd_extra.cpp" "tests/CMakeFiles/syseco_tests.dir/test_bdd_extra.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_bdd_extra.cpp.o.d"
  "/root/repo/tests/test_cnf.cpp" "tests/CMakeFiles/syseco_tests.dir/test_cnf.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_cnf.cpp.o.d"
  "/root/repo/tests/test_data_files.cpp" "tests/CMakeFiles/syseco_tests.dir/test_data_files.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_data_files.cpp.o.d"
  "/root/repo/tests/test_engine_options.cpp" "tests/CMakeFiles/syseco_tests.dir/test_engine_options.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_engine_options.cpp.o.d"
  "/root/repo/tests/test_engines.cpp" "tests/CMakeFiles/syseco_tests.dir/test_engines.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_engines.cpp.o.d"
  "/root/repo/tests/test_exactfix.cpp" "tests/CMakeFiles/syseco_tests.dir/test_exactfix.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_exactfix.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/syseco_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gen.cpp" "tests/CMakeFiles/syseco_tests.dir/test_gen.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_gen.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/syseco_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interpolation.cpp" "tests/CMakeFiles/syseco_tests.dir/test_interpolation.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_interpolation.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/syseco_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_io_formats.cpp" "tests/CMakeFiles/syseco_tests.dir/test_io_formats.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_io_formats.cpp.o.d"
  "/root/repo/tests/test_matching.cpp" "tests/CMakeFiles/syseco_tests.dir/test_matching.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_matching.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/syseco_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_netlist_extra.cpp" "tests/CMakeFiles/syseco_tests.dir/test_netlist_extra.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_netlist_extra.cpp.o.d"
  "/root/repo/tests/test_opt.cpp" "tests/CMakeFiles/syseco_tests.dir/test_opt.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_opt.cpp.o.d"
  "/root/repo/tests/test_patch.cpp" "tests/CMakeFiles/syseco_tests.dir/test_patch.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_patch.cpp.o.d"
  "/root/repo/tests/test_pointsets.cpp" "tests/CMakeFiles/syseco_tests.dir/test_pointsets.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_pointsets.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/syseco_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sampling.cpp" "tests/CMakeFiles/syseco_tests.dir/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_sampling.cpp.o.d"
  "/root/repo/tests/test_sat.cpp" "tests/CMakeFiles/syseco_tests.dir/test_sat.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_sat.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/syseco_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_solver_core.cpp" "tests/CMakeFiles/syseco_tests.dir/test_solver_core.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_solver_core.cpp.o.d"
  "/root/repo/tests/test_synthesis.cpp" "tests/CMakeFiles/syseco_tests.dir/test_synthesis.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_synthesis.cpp.o.d"
  "/root/repo/tests/test_theorem1.cpp" "tests/CMakeFiles/syseco_tests.dir/test_theorem1.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_theorem1.cpp.o.d"
  "/root/repo/tests/test_timing.cpp" "tests/CMakeFiles/syseco_tests.dir/test_timing.cpp.o" "gcc" "tests/CMakeFiles/syseco_tests.dir/test_timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/itp/CMakeFiles/syseco_itp.dir/DependInfo.cmake"
  "/root/repo/build/src/eco/CMakeFiles/syseco_eco.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/syseco_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/syseco_io.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/syseco_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/syseco_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/syseco_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/syseco_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/syseco_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/syseco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/syseco_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
