# Empty dependencies file for syseco_tests.
# This may be replaced when dependencies are built.
