file(REMOVE_RECURSE
  "CMakeFiles/syseco_timing.dir/timing.cpp.o"
  "CMakeFiles/syseco_timing.dir/timing.cpp.o.d"
  "libsyseco_timing.a"
  "libsyseco_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syseco_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
