file(REMOVE_RECURSE
  "libsyseco_timing.a"
)
