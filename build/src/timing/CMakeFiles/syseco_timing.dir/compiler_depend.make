# Empty compiler generated dependencies file for syseco_timing.
# This may be replaced when dependencies are built.
