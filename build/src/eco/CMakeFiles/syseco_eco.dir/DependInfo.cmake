
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eco/conesynth.cpp" "src/eco/CMakeFiles/syseco_eco.dir/conesynth.cpp.o" "gcc" "src/eco/CMakeFiles/syseco_eco.dir/conesynth.cpp.o.d"
  "/root/repo/src/eco/deltasyn.cpp" "src/eco/CMakeFiles/syseco_eco.dir/deltasyn.cpp.o" "gcc" "src/eco/CMakeFiles/syseco_eco.dir/deltasyn.cpp.o.d"
  "/root/repo/src/eco/exactfix.cpp" "src/eco/CMakeFiles/syseco_eco.dir/exactfix.cpp.o" "gcc" "src/eco/CMakeFiles/syseco_eco.dir/exactfix.cpp.o.d"
  "/root/repo/src/eco/matching.cpp" "src/eco/CMakeFiles/syseco_eco.dir/matching.cpp.o" "gcc" "src/eco/CMakeFiles/syseco_eco.dir/matching.cpp.o.d"
  "/root/repo/src/eco/patch.cpp" "src/eco/CMakeFiles/syseco_eco.dir/patch.cpp.o" "gcc" "src/eco/CMakeFiles/syseco_eco.dir/patch.cpp.o.d"
  "/root/repo/src/eco/sampling.cpp" "src/eco/CMakeFiles/syseco_eco.dir/sampling.cpp.o" "gcc" "src/eco/CMakeFiles/syseco_eco.dir/sampling.cpp.o.d"
  "/root/repo/src/eco/syseco.cpp" "src/eco/CMakeFiles/syseco_eco.dir/syseco.cpp.o" "gcc" "src/eco/CMakeFiles/syseco_eco.dir/syseco.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/syseco_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/syseco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/syseco_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/syseco_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/syseco_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/syseco_timing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
