file(REMOVE_RECURSE
  "libsyseco_eco.a"
)
