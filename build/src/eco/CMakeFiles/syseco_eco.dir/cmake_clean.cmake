file(REMOVE_RECURSE
  "CMakeFiles/syseco_eco.dir/conesynth.cpp.o"
  "CMakeFiles/syseco_eco.dir/conesynth.cpp.o.d"
  "CMakeFiles/syseco_eco.dir/deltasyn.cpp.o"
  "CMakeFiles/syseco_eco.dir/deltasyn.cpp.o.d"
  "CMakeFiles/syseco_eco.dir/exactfix.cpp.o"
  "CMakeFiles/syseco_eco.dir/exactfix.cpp.o.d"
  "CMakeFiles/syseco_eco.dir/matching.cpp.o"
  "CMakeFiles/syseco_eco.dir/matching.cpp.o.d"
  "CMakeFiles/syseco_eco.dir/patch.cpp.o"
  "CMakeFiles/syseco_eco.dir/patch.cpp.o.d"
  "CMakeFiles/syseco_eco.dir/sampling.cpp.o"
  "CMakeFiles/syseco_eco.dir/sampling.cpp.o.d"
  "CMakeFiles/syseco_eco.dir/syseco.cpp.o"
  "CMakeFiles/syseco_eco.dir/syseco.cpp.o.d"
  "libsyseco_eco.a"
  "libsyseco_eco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syseco_eco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
