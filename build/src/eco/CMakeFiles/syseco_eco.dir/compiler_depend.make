# Empty compiler generated dependencies file for syseco_eco.
# This may be replaced when dependencies are built.
