# Empty dependencies file for syseco_gen.
# This may be replaced when dependencies are built.
