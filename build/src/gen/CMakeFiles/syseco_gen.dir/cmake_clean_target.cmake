file(REMOVE_RECURSE
  "libsyseco_gen.a"
)
