file(REMOVE_RECURSE
  "CMakeFiles/syseco_gen.dir/eco_case.cpp.o"
  "CMakeFiles/syseco_gen.dir/eco_case.cpp.o.d"
  "CMakeFiles/syseco_gen.dir/spec_builder.cpp.o"
  "CMakeFiles/syseco_gen.dir/spec_builder.cpp.o.d"
  "libsyseco_gen.a"
  "libsyseco_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syseco_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
