
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/eco_case.cpp" "src/gen/CMakeFiles/syseco_gen.dir/eco_case.cpp.o" "gcc" "src/gen/CMakeFiles/syseco_gen.dir/eco_case.cpp.o.d"
  "/root/repo/src/gen/spec_builder.cpp" "src/gen/CMakeFiles/syseco_gen.dir/spec_builder.cpp.o" "gcc" "src/gen/CMakeFiles/syseco_gen.dir/spec_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/syseco_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/syseco_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/syseco_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
