# Empty dependencies file for syseco_itp.
# This may be replaced when dependencies are built.
