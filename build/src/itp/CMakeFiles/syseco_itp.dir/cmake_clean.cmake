file(REMOVE_RECURSE
  "CMakeFiles/syseco_itp.dir/interp_fix.cpp.o"
  "CMakeFiles/syseco_itp.dir/interp_fix.cpp.o.d"
  "CMakeFiles/syseco_itp.dir/itp_solver.cpp.o"
  "CMakeFiles/syseco_itp.dir/itp_solver.cpp.o.d"
  "libsyseco_itp.a"
  "libsyseco_itp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syseco_itp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
