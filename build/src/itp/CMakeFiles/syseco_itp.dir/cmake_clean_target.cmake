file(REMOVE_RECURSE
  "libsyseco_itp.a"
)
