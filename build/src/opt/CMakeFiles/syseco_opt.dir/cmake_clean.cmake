file(REMOVE_RECURSE
  "CMakeFiles/syseco_opt.dir/passes.cpp.o"
  "CMakeFiles/syseco_opt.dir/passes.cpp.o.d"
  "libsyseco_opt.a"
  "libsyseco_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syseco_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
