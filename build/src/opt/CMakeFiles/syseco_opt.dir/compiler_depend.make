# Empty compiler generated dependencies file for syseco_opt.
# This may be replaced when dependencies are built.
