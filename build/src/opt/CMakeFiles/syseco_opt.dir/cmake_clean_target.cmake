file(REMOVE_RECURSE
  "libsyseco_opt.a"
)
