# Empty compiler generated dependencies file for syseco_cli.
# This may be replaced when dependencies are built.
