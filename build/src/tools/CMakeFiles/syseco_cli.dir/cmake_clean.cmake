file(REMOVE_RECURSE
  "CMakeFiles/syseco_cli.dir/syseco_cli.cpp.o"
  "CMakeFiles/syseco_cli.dir/syseco_cli.cpp.o.d"
  "syseco_cli"
  "syseco_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syseco_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
