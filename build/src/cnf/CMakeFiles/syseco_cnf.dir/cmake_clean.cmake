file(REMOVE_RECURSE
  "CMakeFiles/syseco_cnf.dir/encode.cpp.o"
  "CMakeFiles/syseco_cnf.dir/encode.cpp.o.d"
  "libsyseco_cnf.a"
  "libsyseco_cnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syseco_cnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
