file(REMOVE_RECURSE
  "libsyseco_cnf.a"
)
