
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cnf/encode.cpp" "src/cnf/CMakeFiles/syseco_cnf.dir/encode.cpp.o" "gcc" "src/cnf/CMakeFiles/syseco_cnf.dir/encode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/syseco_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/syseco_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/syseco_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
