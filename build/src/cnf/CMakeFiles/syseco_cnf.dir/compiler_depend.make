# Empty compiler generated dependencies file for syseco_cnf.
# This may be replaced when dependencies are built.
