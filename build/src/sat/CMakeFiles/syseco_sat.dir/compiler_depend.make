# Empty compiler generated dependencies file for syseco_sat.
# This may be replaced when dependencies are built.
