file(REMOVE_RECURSE
  "libsyseco_sat.a"
)
