file(REMOVE_RECURSE
  "CMakeFiles/syseco_sat.dir/solver.cpp.o"
  "CMakeFiles/syseco_sat.dir/solver.cpp.o.d"
  "libsyseco_sat.a"
  "libsyseco_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syseco_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
