file(REMOVE_RECURSE
  "CMakeFiles/syseco_sim.dir/simulator.cpp.o"
  "CMakeFiles/syseco_sim.dir/simulator.cpp.o.d"
  "libsyseco_sim.a"
  "libsyseco_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syseco_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
