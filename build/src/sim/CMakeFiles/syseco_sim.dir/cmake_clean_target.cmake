file(REMOVE_RECURSE
  "libsyseco_sim.a"
)
