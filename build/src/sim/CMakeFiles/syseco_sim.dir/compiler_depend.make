# Empty compiler generated dependencies file for syseco_sim.
# This may be replaced when dependencies are built.
