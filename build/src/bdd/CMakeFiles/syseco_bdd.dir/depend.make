# Empty dependencies file for syseco_bdd.
# This may be replaced when dependencies are built.
