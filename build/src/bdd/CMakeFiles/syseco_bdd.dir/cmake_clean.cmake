file(REMOVE_RECURSE
  "CMakeFiles/syseco_bdd.dir/bdd.cpp.o"
  "CMakeFiles/syseco_bdd.dir/bdd.cpp.o.d"
  "libsyseco_bdd.a"
  "libsyseco_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syseco_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
