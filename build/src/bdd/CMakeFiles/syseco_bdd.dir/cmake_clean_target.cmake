file(REMOVE_RECURSE
  "libsyseco_bdd.a"
)
