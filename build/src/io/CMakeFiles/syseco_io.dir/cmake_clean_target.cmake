file(REMOVE_RECURSE
  "libsyseco_io.a"
)
