
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/blif_io.cpp" "src/io/CMakeFiles/syseco_io.dir/blif_io.cpp.o" "gcc" "src/io/CMakeFiles/syseco_io.dir/blif_io.cpp.o.d"
  "/root/repo/src/io/netlist_io.cpp" "src/io/CMakeFiles/syseco_io.dir/netlist_io.cpp.o" "gcc" "src/io/CMakeFiles/syseco_io.dir/netlist_io.cpp.o.d"
  "/root/repo/src/io/verilog_io.cpp" "src/io/CMakeFiles/syseco_io.dir/verilog_io.cpp.o" "gcc" "src/io/CMakeFiles/syseco_io.dir/verilog_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/syseco_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
