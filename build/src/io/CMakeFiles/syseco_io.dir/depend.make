# Empty dependencies file for syseco_io.
# This may be replaced when dependencies are built.
