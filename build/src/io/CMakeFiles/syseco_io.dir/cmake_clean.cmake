file(REMOVE_RECURSE
  "CMakeFiles/syseco_io.dir/blif_io.cpp.o"
  "CMakeFiles/syseco_io.dir/blif_io.cpp.o.d"
  "CMakeFiles/syseco_io.dir/netlist_io.cpp.o"
  "CMakeFiles/syseco_io.dir/netlist_io.cpp.o.d"
  "CMakeFiles/syseco_io.dir/verilog_io.cpp.o"
  "CMakeFiles/syseco_io.dir/verilog_io.cpp.o.d"
  "libsyseco_io.a"
  "libsyseco_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syseco_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
