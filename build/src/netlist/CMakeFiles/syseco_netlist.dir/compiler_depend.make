# Empty compiler generated dependencies file for syseco_netlist.
# This may be replaced when dependencies are built.
