file(REMOVE_RECURSE
  "CMakeFiles/syseco_netlist.dir/netlist.cpp.o"
  "CMakeFiles/syseco_netlist.dir/netlist.cpp.o.d"
  "libsyseco_netlist.a"
  "libsyseco_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syseco_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
