file(REMOVE_RECURSE
  "libsyseco_netlist.a"
)
