file(REMOVE_RECURSE
  "CMakeFiles/figure1_gating.dir/figure1_gating.cpp.o"
  "CMakeFiles/figure1_gating.dir/figure1_gating.cpp.o.d"
  "figure1_gating"
  "figure1_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
