# Empty dependencies file for figure1_gating.
# This may be replaced when dependencies are built.
