# Empty compiler generated dependencies file for multi_error_eco.
# This may be replaced when dependencies are built.
