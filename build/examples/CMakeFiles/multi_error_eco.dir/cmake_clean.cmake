file(REMOVE_RECURSE
  "CMakeFiles/multi_error_eco.dir/multi_error_eco.cpp.o"
  "CMakeFiles/multi_error_eco.dir/multi_error_eco.cpp.o.d"
  "multi_error_eco"
  "multi_error_eco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_error_eco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
