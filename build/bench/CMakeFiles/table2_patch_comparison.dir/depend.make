# Empty dependencies file for table2_patch_comparison.
# This may be replaced when dependencies are built.
