
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_heuristics.cpp" "bench/CMakeFiles/ablation_heuristics.dir/ablation_heuristics.cpp.o" "gcc" "bench/CMakeFiles/ablation_heuristics.dir/ablation_heuristics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eco/CMakeFiles/syseco_eco.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/syseco_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/syseco_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/syseco_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/syseco_io.dir/DependInfo.cmake"
  "/root/repo/build/src/itp/CMakeFiles/syseco_itp.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/syseco_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/syseco_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/syseco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/syseco_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/syseco_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
