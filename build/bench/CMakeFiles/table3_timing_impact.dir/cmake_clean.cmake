file(REMOVE_RECURSE
  "CMakeFiles/table3_timing_impact.dir/table3_timing_impact.cpp.o"
  "CMakeFiles/table3_timing_impact.dir/table3_timing_impact.cpp.o.d"
  "table3_timing_impact"
  "table3_timing_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_timing_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
