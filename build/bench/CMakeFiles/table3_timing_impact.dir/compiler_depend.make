# Empty compiler generated dependencies file for table3_timing_impact.
# This may be replaced when dependencies are built.
