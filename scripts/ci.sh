#!/usr/bin/env bash
# CI gauntlet: Release build + full test suite, sanitizer build + hostile
# -input suite, and a kill-and-resume smoke test that crash-injects the CLI
# mid-run (simulated kill -9) and proves the journal resumes to a verified
# result. Run from anywhere; builds land in build-ci/ and build-ci-asan/.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== Release build + tier-1 tests ==="
cmake -B "$ROOT/build-ci" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$ROOT/build-ci" -j "$JOBS"
ctest --test-dir "$ROOT/build-ci" --output-on-failure -j "$JOBS"

echo "=== Sanitizer build (ASan+UBSan) + robustness suite ==="
cmake -B "$ROOT/build-ci-asan" -S "$ROOT" -DSYSECO_SANITIZE=ON
cmake --build "$ROOT/build-ci-asan" -j "$JOBS"
ctest --test-dir "$ROOT/build-ci-asan" --output-on-failure -j "$JOBS" -L sanitize

echo "=== Kill-and-resume smoke test ==="
CLI="$ROOT/build-ci/src/tools/syseco_cli"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
IMPL="$ROOT/data/alu_impl.blif"
SPEC="$ROOT/data/alu_spec.blif"

"$CLI" --impl "$IMPL" --spec "$SPEC" --report "$SMOKE/ref.json" \
    > "$SMOKE/ref.log"

# Crash (std::_Exit(137), the honest kill -9) right after the first
# checkpoint commits, then resume until the run completes; each resume may
# crash again after one more output, so loop with a hard bound.
set +e
SYSECO_FAULT_INJECT="journal.checkpoint=crash" \
    "$CLI" --impl "$IMPL" --spec "$SPEC" --journal "$SMOKE/j" \
    > "$SMOKE/crash.log" 2>&1
rc=$?
set -e
[ "$rc" -eq 137 ] || { echo "expected crash exit 137, got $rc"; exit 1; }

for round in 1 2 3 4 5 6 7 8; do
  set +e
  SYSECO_FAULT_INJECT="journal.checkpoint=crash@1" \
      "$CLI" --impl "$IMPL" --spec "$SPEC" --resume "$SMOKE/j" \
      --report "$SMOKE/resumed.json" > "$SMOKE/resume$round.log" 2>&1
  rc=$?
  set -e
  [ "$rc" -eq 137 ] && continue
  [ "$rc" -eq 0 ] || { echo "resume failed with $rc"; cat "$SMOKE/resume$round.log"; exit 1; }
  break
done
[ "$rc" -eq 0 ] || { echo "resume chain never finished"; exit 1; }

# The resumed report must equal the uninterrupted one, timing aside.
normalize() { grep -v '"phase_seconds"' "$1" | sed 's/"seconds": [0-9.e+-]*/"seconds": T/g'; }
if ! diff <(normalize "$SMOKE/ref.json") <(normalize "$SMOKE/resumed.json"); then
  echo "resumed report diverged from the uninterrupted run"
  exit 1
fi

echo "=== CI passed ==="
