#!/usr/bin/env bash
# CI gauntlet: Release build + full test suite, sanitizer build + hostile
# -input suite, a kill-and-resume smoke test that crash-injects the CLI
# mid-run (simulated kill -9) and proves the journal resumes to a verified
# result, and an isolation fault-injection matrix that crashes/OOMs/hangs/
# garbles one worker subprocess per run and proves the supervisor contains
# it, and a verify-oracle stage that certifies the example suite under
# paranoid audits, injects a miscompiled patch and proves the oracle
# catches it (repro bundle, quarantine, exit 4) with verdict records
# bit-identical across jobs/isolate/resume, and a distributed-loopback
# stage that runs the suite over two --serve-worker TCP agents, kills one
# mid-run, and proves the fleet finishes with verdicts bit-identical to
# --jobs 2 (plus graceful in-process degradation when every agent is gone),
# and a daemon-soak stage that SIGKILLs a resident --serve daemon mid-queue
# and proves the restarted daemon recovers its WAL and drains every job to
# verdicts bit-identical to undisturbed one-shot runs.
# Run from anywhere; builds land in build-ci/ and build-ci-asan/.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

# Stage harness: every stage prints exactly one machine-greppable
#   STAGE <name> OK|FAIL
# line. The script is linear (no stage functions) because `set -e` is
# silently disabled inside a function called from a condition - the
# classic bash footgun that turns a failing stage into a green run.
CURRENT_STAGE="setup"
begin_stage() { CURRENT_STAGE="$1"; }
end_stage() { echo "STAGE $CURRENT_STAGE OK"; CURRENT_STAGE="setup"; }
on_exit() {
  status=$?
  [ -n "${SMOKE:-}" ] && rm -rf "$SMOKE"
  [ "$status" -ne 0 ] && echo "STAGE $CURRENT_STAGE FAIL"
  exit "$status"
}
trap on_exit EXIT

begin_stage release-tests
echo "=== Release build + tier-1 tests ==="
cmake -B "$ROOT/build-ci" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$ROOT/build-ci" -j "$JOBS"
ctest --test-dir "$ROOT/build-ci" --output-on-failure -j "$JOBS"

end_stage
begin_stage asan
echo "=== Sanitizer build (ASan+UBSan) + robustness suite ==="
cmake -B "$ROOT/build-ci-asan" -S "$ROOT" -DSYSECO_SANITIZE=address
cmake --build "$ROOT/build-ci-asan" -j "$JOBS"
ctest --test-dir "$ROOT/build-ci-asan" --output-on-failure -j "$JOBS" -L sanitize

end_stage
begin_stage tsan
echo "=== ThreadSanitizer build + parallel suite ==="
cmake -B "$ROOT/build-ci-tsan" -S "$ROOT" -DSYSECO_SANITIZE=thread
cmake --build "$ROOT/build-ci-tsan" -j "$JOBS"
ctest --test-dir "$ROOT/build-ci-tsan" --output-on-failure -j "$JOBS" -L sanitize

end_stage
begin_stage bench-smoke
echo "=== Bench smoke (scripts/bench.sh --quick) + schema validation ==="
BENCH_JSON="$(mktemp)"
"$ROOT/scripts/bench.sh" --quick --out "$BENCH_JSON"
python3 - "$BENCH_JSON" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "e2e" and doc["schema_version"] == 2
assert isinstance(doc["hardware_threads"], int)
assert doc["cases"], "no cases recorded"
for case in doc["cases"]:
    assert case["name"] and isinstance(case["failing_outputs"], int)
    assert all(k in case["patch"] for k in ("inputs", "outputs", "gates", "nets"))
    jobs_seen = [run["jobs"] for run in case["runs"]]
    assert jobs_seen == [1, 2, 4], jobs_seen
    for run in case["runs"]:
        assert run["verified"] is True, "unverified bench run"
        assert run["identical_to_jobs1"] is True, "jobs-N result diverged"
        assert run["wall_seconds"] >= 0 and run["speedup_vs_jobs1"] > 0
        # phases are aggregate worker CPU, recorded separately from wall
        assert run["cpu_seconds"] >= 0
        assert all(k in run["phases_cpu"] for k in
                   ("sampling", "symbolic", "screening", "validation",
                    "fallback", "sweep", "verify"))
s = doc["summary"]
assert s["all_verified"] is True and s["all_jobs_identical"] is True
assert s["geomean_speedup_jobs2"] > 0 and s["geomean_speedup_jobs4"] > 0
print("BENCH_e2e.json schema OK")
PYEOF

end_stage
begin_stage perf-smoke
echo "=== Perf smoke: quick bench vs committed BENCH_e2e.json ==="
# Patch shape must match the committed baseline exactly (verdict identity is
# always gated); wall time is gated at +25% per case, skipped on single-
# threaded boxes where --jobs parallelism cannot be exercised meaningfully.
python3 - "$BENCH_JSON" "$ROOT/BENCH_e2e.json" <<'PYEOF'
import json, sys
cur = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
assert base["schema_version"] == 2, "regenerate BENCH_e2e.json (schema v2)"
base_cases = {c["name"]: c for c in base["cases"]}
gate_wall = cur["hardware_threads"] > 1
if not gate_wall:
    # Never skip silently: the log must say what was skipped, why, and what
    # is still being gated (patch-shape identity always runs below).
    print(f"PERF-SMOKE SKIPPED (wall-time gate): only "
          f"{cur['hardware_threads']} hardware thread, --jobs parallelism "
          f"cannot be exercised; patch-shape identity check still runs")
for case in cur["cases"]:
    b = base_cases.get(case["name"])
    assert b is not None, f"case {case['name']} missing from baseline"
    assert case["failing_outputs"] == b["failing_outputs"], case["name"]
    assert case["patch"] == b["patch"], (
        f"{case['name']}: patch shape diverged from baseline "
        f"{b['patch']} -> {case['patch']}")
    if not gate_wall:
        continue
    for run in case["runs"]:
        br = [r for r in b["runs"] if r["jobs"] == run["jobs"]][0]
        limit = br["wall_seconds"] * 1.25 + 0.05  # floor absorbs tiny cases
        assert run["wall_seconds"] <= limit, (
            f"{case['name']} jobs={run['jobs']}: wall regression "
            f"{br['wall_seconds']:.3f}s -> {run['wall_seconds']:.3f}s "
            f"(>25% over baseline)")
print("perf smoke OK vs committed baseline "
      + ("(wall time + patch shape)" if gate_wall else "(patch shape only)"))
PYEOF
rm -f "$BENCH_JSON"

end_stage
begin_stage kill-resume
echo "=== Kill-and-resume smoke test ==="
CLI="$ROOT/build-ci/src/tools/syseco_cli"
SMOKE="$(mktemp -d)"  # removed by the on_exit trap
IMPL="$ROOT/data/alu_impl.blif"
SPEC="$ROOT/data/alu_spec.blif"

"$CLI" --impl "$IMPL" --spec "$SPEC" --report "$SMOKE/ref.json" \
    > "$SMOKE/ref.log"

# Crash (std::_Exit(137), the honest kill -9) right after the first
# checkpoint commits, then resume until the run completes; each resume may
# crash again after one more output, so loop with a hard bound.
set +e
SYSECO_FAULT_INJECT="journal.checkpoint=crash" \
    "$CLI" --impl "$IMPL" --spec "$SPEC" --journal "$SMOKE/j" \
    > "$SMOKE/crash.log" 2>&1
rc=$?
set -e
[ "$rc" -eq 137 ] || { echo "expected crash exit 137, got $rc"; exit 1; }

for round in 1 2 3 4 5 6 7 8; do
  set +e
  SYSECO_FAULT_INJECT="journal.checkpoint=crash@1" \
      "$CLI" --impl "$IMPL" --spec "$SPEC" --resume "$SMOKE/j" \
      --report "$SMOKE/resumed.json" > "$SMOKE/resume$round.log" 2>&1
  rc=$?
  set -e
  [ "$rc" -eq 137 ] && continue
  [ "$rc" -eq 0 ] || { echo "resume failed with $rc"; cat "$SMOKE/resume$round.log"; exit 1; }
  break
done
[ "$rc" -eq 0 ] || { echo "resume chain never finished"; exit 1; }

# The resumed report must equal the uninterrupted one, timing aside.
normalize() { grep -v '"phase_cpu_seconds"' "$1" | sed -E 's/"(cpu_)?seconds": [0-9.e+-]*/"\1seconds": T/g'; }
if ! diff <(normalize "$SMOKE/ref.json") <(normalize "$SMOKE/resumed.json"); then
  echo "resumed report diverged from the uninterrupted run"
  exit 1
fi

end_stage
begin_stage isolation-matrix
echo "=== Isolation fault-injection matrix ==="
# Reference: a clean isolated run must be bit-identical to the in-process
# run (the report smoke above) in everything but wall-clock timing.
"$CLI" --impl "$IMPL" --spec "$SPEC" --jobs 4 --isolate \
    --report "$SMOKE/iso_ref.json" --out "$SMOKE/iso_ref.blif" \
    > "$SMOKE/iso_ref.log"
"$CLI" --impl "$IMPL" --spec "$SPEC" --jobs 4 \
    --report "$SMOKE/inproc_ref.json" --out "$SMOKE/inproc_ref.blif" \
    > "$SMOKE/inproc_ref.log"
cmp "$SMOKE/iso_ref.blif" "$SMOKE/inproc_ref.blif" \
    || { echo "--isolate netlist diverged from the in-process run"; exit 1; }
if ! diff <(normalize "$SMOKE/inproc_ref.json") <(normalize "$SMOKE/iso_ref.json"); then
  echo "--isolate report diverged from the in-process run"
  exit 1
fi

# Inject each fault kind into the worker of the last planned output: the
# run must complete degraded (exit 4), quarantine exactly that output to the
# cone-clone fallback with the matching exit cause and attempt count, and
# leave every other output bit-identical to the uninjected run.
VICTIM="$(python3 -c "
import json
print(json.load(open('$SMOKE/iso_ref.json'))['outputs'][-1]['output'])")"
for KIND in crash oom hang garbage-ipc; do
  case "$KIND" in
    hang) WANT_CAUSE="wall-timeout"; WANT_LIMIT="deadline-exceeded" ;;
    oom)  WANT_CAUSE="oom";          WANT_LIMIT="budget-exhausted" ;;
    *)    WANT_CAUSE="$KIND";        WANT_LIMIT="internal" ;;
  esac
  set +e
  SYSECO_FAULT_INJECT="isolate.worker.o${VICTIM}=${KIND}" \
      "$CLI" --impl "$IMPL" --spec "$SPEC" --jobs 4 --isolate \
      --isolate-wall-ms 2000 --isolate-backoff-ms 1 --isolate-max-attempts 2 \
      --report "$SMOKE/iso_$KIND.json" > "$SMOKE/iso_$KIND.log" 2>&1
  rc=$?
  set -e
  [ "$rc" -eq 4 ] || {
    echo "fault $KIND: expected degraded exit 4, got $rc"
    cat "$SMOKE/iso_$KIND.log"; exit 1; }
  python3 - "$SMOKE/iso_ref.json" "$SMOKE/iso_$KIND.json" "$VICTIM" \
      "$KIND" "$WANT_CAUSE" "$WANT_LIMIT" <<'PYEOF'
import json, sys
ref, got = json.load(open(sys.argv[1])), json.load(open(sys.argv[2]))
victim, kind, want_cause, want_limit = int(sys.argv[3]), *sys.argv[4:7]
inj = [o for o in got["outputs"] if o["output"] == victim][0]
assert inj["status"] == "fallback", (kind, inj)
assert inj["exit_cause"] == want_cause, (kind, inj)
assert inj["limit"] == want_limit, (kind, inj)
assert inj["attempts"] == 2, (kind, inj)
assert got["degraded"] is True and got["success"] is True
def norm(o):
    return {k: (0 if k == "seconds" else v) for k, v in o.items()}
refmap = {o["output"]: norm(o) for o in ref["outputs"]}
for o in got["outputs"]:
    if o["output"] == victim:
        continue
    assert norm(o) == refmap[o["output"]], (kind, o)
print(f"fault {kind}: contained (fallback, {want_cause}, 2 attempts)")
PYEOF
done

end_stage
begin_stage verify-oracle
echo "=== Certification oracle (verify-oracle) ==="
# Example suite under paranoid auditing: every output pair must certify
# through the three independent routes with zero audit findings, and the
# report must carry build provenance.
"$CLI" --impl "$IMPL" --spec "$SPEC" --audit=paranoid --jobs 4 \
    --report "$SMOKE/oracle_clean.json" > "$SMOKE/oracle_clean.log"
python3 - "$SMOKE/oracle_clean.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["oracle"]["enabled"] is True
assert doc["oracle"]["disagreements"] == 0
certs = doc["oracle"]["outputs"]
assert certs, "no certificates recorded"
for c in certs:
    assert c["certified"] is True, c
    assert c["sat"] == "equivalent", c
    assert c["bdd"] in ("equivalent", "skipped(budget)"), c
    assert c["sim"] in ("passed-bounded", "equivalent"), c
audit = doc["audit"]
assert audit["level"] == "paranoid", audit
assert audit["boundaries"] > 0 and audit["findings"] == [], audit
assert doc["build"]["git_hash"], doc.get("build")
print(f"verify-oracle: {len(certs)} output pair(s) certified "
      f"across {audit['boundaries']} paranoid audit boundaries")
PYEOF

# Miscompiled-patch injection: the oracle must catch the wrong patch,
# quarantine it to the cone-clone fallback (exit 4) and package a repro
# bundle with the minimized counterexample.
set +e
SYSECO_FAULT_INJECT="oracle.wrong-patch=wrong-patch" \
    "$CLI" --impl "$IMPL" --spec "$SPEC" --audit=paranoid \
    --repro-dir "$SMOKE/repro" --journal "$SMOKE/j_wrong" \
    --report "$SMOKE/oracle_wrong.json" > "$SMOKE/oracle_wrong.log" 2>&1
rc=$?
set -e
[ "$rc" -eq 4 ] || {
  echo "wrong-patch: expected quarantined exit 4, got $rc"
  cat "$SMOKE/oracle_wrong.log"; exit 1; }
BUNDLE="$(ls -d "$SMOKE"/repro/disagreement-o* 2>/dev/null | head -1)"
[ -n "$BUNDLE" ] || { echo "wrong-patch: no repro bundle produced"; exit 1; }
for f in impl_patched.raw spec.raw patch.txt cex.txt meta.json MANIFEST; do
  [ -s "$BUNDLE/$f" ] || { echo "repro bundle missing $f"; exit 1; }
done
python3 - "$SMOKE/oracle_wrong.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["oracle"]["disagreements"] == 1, doc["oracle"]
assert doc["success"] is True and doc["degraded"] is True
fallbacks = [o for o in doc["outputs"] if o["status"] == "fallback"]
assert len(fallbacks) == 1 and fallbacks[0]["limit"] == "internal", fallbacks
for c in doc["oracle"]["outputs"]:
    assert c["certified"] is True, c  # post-quarantine re-certification
print("verify-oracle: wrong patch caught, quarantined, bundle verified")
PYEOF

# The journaled verdict records must be bit-identical however the run was
# executed: in-process --jobs, --isolate subprocess workers, and a
# crash-then---resume chain of the same injected run.
set +e
SYSECO_FAULT_INJECT="oracle.wrong-patch=wrong-patch" \
    "$CLI" --impl "$IMPL" --spec "$SPEC" --jobs 4 --isolate \
    --journal "$SMOKE/j_wrong_iso" > "$SMOKE/oracle_iso.log" 2>&1
[ $? -eq 4 ] || { echo "isolate wrong-patch: expected exit 4"; exit 1; }
SYSECO_FAULT_INJECT="journal.checkpoint=crash" \
    "$CLI" --impl "$IMPL" --spec "$SPEC" \
    --journal "$SMOKE/j_wrong_res" > /dev/null 2>&1
[ $? -eq 137 ] || { echo "crash seed run: expected exit 137"; exit 1; }
SYSECO_FAULT_INJECT="oracle.wrong-patch=wrong-patch" \
    "$CLI" --impl "$IMPL" --spec "$SPEC" \
    --resume "$SMOKE/j_wrong_res" > "$SMOKE/oracle_res.log" 2>&1
[ $? -eq 4 ] || { echo "resume wrong-patch: expected exit 4"; exit 1; }
set -e
extract_verdicts() {
  python3 - "$1" <<'PYEOF'
import re, sys
data = open(sys.argv[1] + "/journal.jsonl", "rb").read()
recs = re.findall(rb'\{"type":"verdicts".*?"disagreements":\d+\}', data)
assert recs, "no verdicts record in " + sys.argv[1]
sys.stdout.write(recs[-1].decode())
PYEOF
}
extract_verdicts "$SMOKE/j_wrong" > "$SMOKE/v_jobs.txt"
extract_verdicts "$SMOKE/j_wrong_iso" > "$SMOKE/v_iso.txt"
extract_verdicts "$SMOKE/j_wrong_res" > "$SMOKE/v_res.txt"
cmp "$SMOKE/v_jobs.txt" "$SMOKE/v_iso.txt" \
    || { echo "--isolate verdict record diverged"; exit 1; }
cmp "$SMOKE/v_jobs.txt" "$SMOKE/v_res.txt" \
    || { echo "--resume verdict record diverged"; exit 1; }
echo "verify-oracle: verdict records identical across jobs/isolate/resume"

end_stage
begin_stage fleet-loopback
echo "=== Distributed worker fleet (loopback) ==="
# Two --serve-worker agents on loopback ephemeral ports; one is killed
# mid-run. The supervisor must reclaim the dead agent's lease, finish on
# the survivor, exit 0, and journal verdict records bit-identical to the
# in-process --jobs 2 run.
FLEET="$SMOKE/fleet"
mkdir -p "$FLEET"
"$CLI" --serve-worker 0 --port-file "$FLEET/p1" > "$FLEET/a1.log" 2>&1 &
AGENT1=$!
"$CLI" --serve-worker 0 --port-file "$FLEET/p2" > "$FLEET/a2.log" 2>&1 &
AGENT2=$!
for _ in $(seq 1 100); do
  [ -s "$FLEET/p1" ] && [ -s "$FLEET/p2" ] && break
  sleep 0.1
done
P1="$(cat "$FLEET/p1")"
P2="$(cat "$FLEET/p2")"

"$CLI" --impl "$IMPL" --spec "$SPEC" --jobs 2 --journal "$FLEET/j_ref" \
    --out "$FLEET/ref.blif" > "$FLEET/ref.log"

( sleep 0.2; kill -9 "$AGENT1" 2>/dev/null ) &
KILLER=$!
set +e
"$CLI" --impl "$IMPL" --spec "$SPEC" \
    --workers "127.0.0.1:$P1,127.0.0.1:$P2" \
    --journal "$FLEET/j_fleet" --out "$FLEET/fleet.blif" \
    > "$FLEET/fleet.log" 2>&1
rc=$?
set -e
wait "$KILLER" 2>/dev/null || true
kill -9 "$AGENT1" "$AGENT2" 2>/dev/null || true
[ "$rc" -eq 0 ] || {
  echo "fleet run failed with $rc"; cat "$FLEET/fleet.log"; exit 1; }
cmp "$FLEET/fleet.blif" "$FLEET/ref.blif" \
    || { echo "fleet netlist diverged from --jobs 2"; exit 1; }
extract_verdicts "$FLEET/j_fleet" > "$FLEET/v_fleet.txt"
extract_verdicts "$FLEET/j_ref" > "$FLEET/v_ref.txt"
cmp "$FLEET/v_fleet.txt" "$FLEET/v_ref.txt" \
    || { echo "fleet verdict record diverged from --jobs 2"; exit 1; }
echo "fleet: run survived a mid-run agent kill, verdicts identical"

# Total fleet loss: every endpoint refuses the connect. The run must
# degrade to in-process execution instead of aborting, record the
# degradation as a structured fleet event, and still land the identical
# result and verdicts.
"$CLI" --impl "$IMPL" --spec "$SPEC" --workers 127.0.0.1:1,127.0.0.1:2 \
    --fleet-connect-timeout-ms 200 --journal "$FLEET/j_dead" \
    --out "$FLEET/dead.blif" > "$FLEET/dead.log" 2>&1 \
    || { echo "dead-fleet run failed"; cat "$FLEET/dead.log"; exit 1; }
grep -aq '"kind":"fleet-degraded"' "$FLEET/j_dead/journal.jsonl" \
    || { echo "dead fleet never recorded degradation"; exit 1; }
cmp "$FLEET/dead.blif" "$FLEET/ref.blif" \
    || { echo "degraded fleet netlist diverged"; exit 1; }
extract_verdicts "$FLEET/j_dead" > "$FLEET/v_dead.txt"
cmp "$FLEET/v_dead.txt" "$FLEET/v_ref.txt" \
    || { echo "degraded fleet verdict record diverged"; exit 1; }
echo "fleet: dead fleet degraded to in-process, verdicts identical"

end_stage
begin_stage daemon-soak
echo "=== Daemon soak: SIGKILL mid-queue, recover, drain ==="
# A resident --serve daemon takes three jobs whose workers self-crash at
# every checkpoint commit (one output of progress per attempt), is killed
# with SIGKILL while the queue is mid-heal, and is restarted on the same
# state directory. The recovered daemon must drain every job to done and
# every job's verdict record and rectified netlist must be bit-identical
# to an undisturbed one-shot run of the same case and seed.
SERVE="$SMOKE/serve"
mkdir -p "$SERVE"
for SEED in 1 2 3; do
  "$CLI" --impl "$IMPL" --spec "$SPEC" --seed "$SEED" \
      --journal "$SERVE/ref$SEED" --out "$SERVE/ref$SEED.blif" \
      > "$SERVE/ref$SEED.log"
done

"$CLI" --serve 0 --serve-state "$SERVE/state" --port-file "$SERVE/port" \
    --serve-pool 1 --serve-attempts 40 > "$SERVE/d1.log" 2>&1 &
DAEMON=$!
for _ in $(seq 1 100); do [ -s "$SERVE/port" ] && break; sleep 0.1; done
PORT="$(cat "$SERVE/port")"
for SEED in 1 2 3; do
  "$CLI" --connect "127.0.0.1:$PORT" --impl "$IMPL" --spec "$SPEC" \
      --seed "$SEED" --detach \
      --submit-fault "journal.checkpoint=crash@0" \
      > "$SERVE/submit$SEED.log" 2>&1 \
      || { echo "submit $SEED rejected"; cat "$SERVE/submit$SEED.log"; exit 1; }
done
sleep 1
kill -9 "$DAEMON" 2>/dev/null
wait "$DAEMON" 2>/dev/null || true
grep -aq '"event":"running"' "$SERVE/state/queue/journal.jsonl" \
    || { echo "daemon died before dispatching anything"; exit 1; }
grep -aq '"event":"done"' "$SERVE/state/queue/journal.jsonl" \
    && { echo "daemon drained before the kill; soak window too late"; exit 1; }

rm -f "$SERVE/port"
"$CLI" --serve 0 --serve-state "$SERVE/state" --port-file "$SERVE/port" \
    --serve-pool 1 --serve-attempts 40 > "$SERVE/d2.log" 2>&1 &
DAEMON=$!
for _ in $(seq 1 100); do [ -s "$SERVE/port" ] && break; sleep 0.1; done
PORT="$(cat "$SERVE/port")"
# A job killed mid-attempt logs "re-queued with resume"; one killed during
# crash-backoff was already queued-with-resume and logs "restored as
# queued-with-resume" instead. Either proves the WAL recovery ran.
grep -aqE 're-queued with resume|restored as queued-with-resume' \
    "$SERVE/d2.log" "$SERVE/state/queue/journal.jsonl" \
    || { echo "restart never recovered the mid-run job"; exit 1; }
for SEED in 1 2 3; do
  "$CLI" --connect "127.0.0.1:$PORT" --wait "j00000$SEED" \
      > "$SERVE/wait$SEED.log" 2>&1 \
      || { echo "job j00000$SEED never drained"; cat "$SERVE/wait$SEED.log"; exit 1; }
  extract_verdicts "$SERVE/state/jobs/j00000$SEED/journal" \
      > "$SERVE/v_job$SEED.txt"
  extract_verdicts "$SERVE/ref$SEED" > "$SERVE/v_ref$SEED.txt"
  cmp "$SERVE/v_job$SEED.txt" "$SERVE/v_ref$SEED.txt" \
      || { echo "job j00000$SEED verdicts diverged after recovery"; exit 1; }
  cmp "$SERVE/state/jobs/j00000$SEED/out.blif" "$SERVE/ref$SEED.blif" \
      || { echo "job j00000$SEED netlist diverged after recovery"; exit 1; }
done
kill "$DAEMON" 2>/dev/null
wait "$DAEMON" 2>/dev/null || true
echo "daemon soak: SIGKILL mid-queue recovered, 3 jobs drained bit-identical"

end_stage
begin_stage batch-fanout
echo "=== Batch fan-out (loopback): kill an agent mid-case and the driver mid-batch ==="
# A 4-case --batch sweep over two loopback agents. The driver is SIGKILLed
# mid-batch, restarted with --resume, and then one agent is SIGKILLed while
# it holds a case. The drained sweep's verdict records and patched netlists
# must be bit-identical to running every case locally with --jobs 2.
BATCH="$SMOKE/batch"
mkdir -p "$BATCH"
for SEED in 1 2 3 4; do
  "$CLI" --impl "$IMPL" --spec "$SPEC" --seed "$SEED" --jobs 2 \
      --journal "$BATCH/bref$SEED" --out "$BATCH/bref$SEED.blif" \
      > "$BATCH/bref$SEED.log"
  extract_verdicts "$BATCH/bref$SEED" > "$BATCH/bref$SEED.verdicts"
  printf '\n' >> "$BATCH/bref$SEED.verdicts"
done
{
  echo '{"cases": ['
  for SEED in 1 2 3 4; do
    COMMA=","; [ "$SEED" -eq 4 ] && COMMA=""
    echo "  {\"name\": \"alu-s$SEED\", \"impl\": \"$IMPL\"," \
         "\"spec\": \"$SPEC\", \"seed\": $SEED}$COMMA"
  done
  echo ']}'
} > "$BATCH/manifest.json"

"$CLI" --serve-worker 0 --port-file "$BATCH/p1" > "$BATCH/ba1.log" 2>&1 &
BAGENT1=$!
"$CLI" --serve-worker 0 --port-file "$BATCH/p2" > "$BATCH/ba2.log" 2>&1 &
BAGENT2=$!
for _ in $(seq 1 100); do
  [ -s "$BATCH/p1" ] && [ -s "$BATCH/p2" ] && break
  sleep 0.1
done
BP1="$(cat "$BATCH/p1")"
BP2="$(cat "$BATCH/p2")"

# Phase 1: SIGKILL the driver as soon as the WAL proves a case is in
# flight. The fsync-per-record ledger means the kill can lose nothing.
"$CLI" --batch "$BATCH/manifest.json" --batch-state "$BATCH/state" \
    --workers "127.0.0.1:$BP1,127.0.0.1:$BP2" --jobs 2 --verbose \
    > "$BATCH/drive1.log" 2>&1 &
BDRIVER=$!
for _ in $(seq 1 200); do
  grep -aq '"event":"dispatched"' "$BATCH/state/ledger/journal.jsonl" \
      2>/dev/null && break
  sleep 0.05
done
kill -9 "$BDRIVER" 2>/dev/null
wait "$BDRIVER" 2>/dev/null || true
grep -aq '"event":"dispatched"' "$BATCH/state/ledger/journal.jsonl" \
    || { echo "driver died before dispatching anything"; exit 1; }
DONE_AT_KILL="$(grep -ac '"event":"done"' "$BATCH/state/ledger/journal.jsonl" || true)"
[ "$DONE_AT_KILL" -lt 4 ] \
    || { echo "sweep drained before the kill; soak window too late"; exit 1; }

# Phase 2: restart on the same state directory with --resume; SIGKILL agent
# 1 the moment it holds a case again, so the scheduler must reclaim the
# assignment and redispatch it to the survivor.
( for _ in $(seq 1 400); do
    if grep -aq -- "-> 127.0.0.1:$BP1 " "$BATCH/drive2.log" 2>/dev/null; then
      kill -9 "$BAGENT1" 2>/dev/null
      break
    fi
    sleep 0.02
  done ) &
BKILLER=$!
set +e
"$CLI" --batch "$BATCH/manifest.json" --resume "$BATCH/state" \
    --workers "127.0.0.1:$BP1,127.0.0.1:$BP2" --jobs 2 --verbose \
    > "$BATCH/drive2.log" 2>&1
rc=$?
set -e
wait "$BKILLER" 2>/dev/null || true
kill -9 "$BAGENT1" "$BAGENT2" 2>/dev/null || true
[ "$rc" -eq 0 ] || {
  echo "resumed batch failed with $rc"; cat "$BATCH/drive2.log"; exit 1; }

# The interrupted attempt must be visible in the WAL as recovery, and the
# drained sweep must report every case done.
grep -aqE 'recovery:|"event":"requeued"' \
    "$BATCH/state/ledger/journal.jsonl" "$BATCH/drive2.log" \
    || { echo "resume never recovered the interrupted dispatch"; exit 1; }
python3 - "$BATCH/state/batch_report.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert len(doc["cases"]) == 4, doc
for case in doc["cases"]:
    assert case["state"] == "done" and case["exit_code"] == 0, case
assert doc["interrupted"] is False, doc
print("batch report: 4/4 cases done")
PYEOF

# 3-way identity: every case's netlist and verdict record must match the
# serial local --jobs 2 reference byte for byte.
for SEED in 1 2 3 4; do
  CASE="$BATCH/state/cases/alu-s$SEED"
  cmp "$CASE/out.blif" "$BATCH/bref$SEED.blif" \
      || { echo "batch case alu-s$SEED netlist diverged"; exit 1; }
  cmp "$CASE/verdicts.txt" "$BATCH/bref$SEED.verdicts" \
      || { echo "batch case alu-s$SEED verdicts diverged"; exit 1; }
done
echo "batch fan-out: driver and agent SIGKILLs recovered, 4 cases bit-identical"

end_stage
begin_stage chaos-soak
echo "=== Chaos soak: seeded storage-fault schedules (ASan) ==="
# Seeded fault schedules swept across every execution mode under the ASan
# build: each faulted run must end in a structured exit (no signal death,
# hang, or silent corruption), a fault-free heal must converge on verdicts
# and netlists bit-identical to the reference, and the state trees must
# hold no leaked staging files - chaos_soak exits nonzero on any of those.
# Quick set always; SYSECO_SOAK=1 triples the sweep for nightly runs.
# Repro bundles for violated schedules live outside $SMOKE so they survive
# the exit trap.
SCHEDULES=20
[ "${SYSECO_SOAK:-0}" = "1" ] && SCHEDULES=60
CHAOS="$(mktemp -d -t syseco-chaos-XXXXXX)"
"$ROOT/build-ci-asan/bench/chaos_soak" \
    --cli "$ROOT/build-ci-asan/src/tools/syseco_cli" \
    --impl "$IMPL" --spec "$SPEC" \
    --out-dir "$CHAOS" --schedules "$SCHEDULES" --seed-base 1 \
    || { echo "chaos soak failed; repro bundles kept in $CHAOS"; exit 1; }
rm -rf "$CHAOS"
end_stage

echo "=== CI passed ==="
