#!/usr/bin/env bash
# CI gauntlet: Release build + full test suite, sanitizer build + hostile
# -input suite, and a kill-and-resume smoke test that crash-injects the CLI
# mid-run (simulated kill -9) and proves the journal resumes to a verified
# result. Run from anywhere; builds land in build-ci/ and build-ci-asan/.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== Release build + tier-1 tests ==="
cmake -B "$ROOT/build-ci" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$ROOT/build-ci" -j "$JOBS"
ctest --test-dir "$ROOT/build-ci" --output-on-failure -j "$JOBS"

echo "=== Sanitizer build (ASan+UBSan) + robustness suite ==="
cmake -B "$ROOT/build-ci-asan" -S "$ROOT" -DSYSECO_SANITIZE=address
cmake --build "$ROOT/build-ci-asan" -j "$JOBS"
ctest --test-dir "$ROOT/build-ci-asan" --output-on-failure -j "$JOBS" -L sanitize

echo "=== ThreadSanitizer build + parallel suite ==="
cmake -B "$ROOT/build-ci-tsan" -S "$ROOT" -DSYSECO_SANITIZE=thread
cmake --build "$ROOT/build-ci-tsan" -j "$JOBS"
ctest --test-dir "$ROOT/build-ci-tsan" --output-on-failure -j "$JOBS" -L sanitize

echo "=== Bench smoke (scripts/bench.sh --quick) + schema validation ==="
BENCH_JSON="$(mktemp)"
"$ROOT/scripts/bench.sh" --quick --out "$BENCH_JSON"
python3 - "$BENCH_JSON" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "e2e" and doc["schema_version"] == 1
assert isinstance(doc["hardware_threads"], int)
assert doc["cases"], "no cases recorded"
for case in doc["cases"]:
    assert case["name"] and isinstance(case["failing_outputs"], int)
    assert all(k in case["patch"] for k in ("inputs", "outputs", "gates", "nets"))
    jobs_seen = [run["jobs"] for run in case["runs"]]
    assert jobs_seen == [1, 2, 4], jobs_seen
    for run in case["runs"]:
        assert run["verified"] is True, "unverified bench run"
        assert run["identical_to_jobs1"] is True, "jobs-N result diverged"
        assert run["seconds"] >= 0 and run["speedup_vs_jobs1"] > 0
        assert all(k in run["phases"] for k in
                   ("sampling", "symbolic", "screening", "validation",
                    "fallback", "sweep", "verify"))
s = doc["summary"]
assert s["all_verified"] is True and s["all_jobs_identical"] is True
assert s["geomean_speedup_jobs2"] > 0 and s["geomean_speedup_jobs4"] > 0
print("BENCH_e2e.json schema OK")
PYEOF
rm -f "$BENCH_JSON"

echo "=== Kill-and-resume smoke test ==="
CLI="$ROOT/build-ci/src/tools/syseco_cli"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
IMPL="$ROOT/data/alu_impl.blif"
SPEC="$ROOT/data/alu_spec.blif"

"$CLI" --impl "$IMPL" --spec "$SPEC" --report "$SMOKE/ref.json" \
    > "$SMOKE/ref.log"

# Crash (std::_Exit(137), the honest kill -9) right after the first
# checkpoint commits, then resume until the run completes; each resume may
# crash again after one more output, so loop with a hard bound.
set +e
SYSECO_FAULT_INJECT="journal.checkpoint=crash" \
    "$CLI" --impl "$IMPL" --spec "$SPEC" --journal "$SMOKE/j" \
    > "$SMOKE/crash.log" 2>&1
rc=$?
set -e
[ "$rc" -eq 137 ] || { echo "expected crash exit 137, got $rc"; exit 1; }

for round in 1 2 3 4 5 6 7 8; do
  set +e
  SYSECO_FAULT_INJECT="journal.checkpoint=crash@1" \
      "$CLI" --impl "$IMPL" --spec "$SPEC" --resume "$SMOKE/j" \
      --report "$SMOKE/resumed.json" > "$SMOKE/resume$round.log" 2>&1
  rc=$?
  set -e
  [ "$rc" -eq 137 ] && continue
  [ "$rc" -eq 0 ] || { echo "resume failed with $rc"; cat "$SMOKE/resume$round.log"; exit 1; }
  break
done
[ "$rc" -eq 0 ] || { echo "resume chain never finished"; exit 1; }

# The resumed report must equal the uninterrupted one, timing aside.
normalize() { grep -v '"phase_seconds"' "$1" | sed 's/"seconds": [0-9.e+-]*/"seconds": T/g'; }
if ! diff <(normalize "$SMOKE/ref.json") <(normalize "$SMOKE/resumed.json"); then
  echo "resumed report diverged from the uninterrupted run"
  exit 1
fi

echo "=== CI passed ==="
