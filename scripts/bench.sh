#!/usr/bin/env bash
# End-to-end perf-trajectory benchmark: builds the bench_e2e harness
# (Release) and regenerates BENCH_e2e.json at the repo root.
#
# Usage: scripts/bench.sh [--quick] [--out PATH]
#   --quick  3-case subset, single repetition (the CI smoke configuration)
#   --out    where to write the JSON (default: <repo>/BENCH_e2e.json)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
OUT="$ROOT/BENCH_e2e.json"
ARGS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) ARGS+=(--quick) ;;
    --out) OUT="$2"; shift ;;
    *) echo "usage: bench.sh [--quick] [--out PATH]" >&2; exit 2 ;;
  esac
  shift
done

BUILD="$ROOT/build-bench"
cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" -j "$JOBS" --target bench_e2e

"$BUILD/bench/bench_e2e" "${ARGS[@]+"${ARGS[@]}"}" --out "$OUT"
echo "benchmark written to $OUT"
